"""The transport abstraction the farmer–worker runtime is written against.

The runtime's protocol (``repro.grid.runtime.protocol``) is pull-model
request/reply: workers initiate every exchange and the coordinator only
answers.  A transport therefore has exactly two sides:

* the coordinator holds a :class:`Listener` — a single inbox merging
  the traffic of every worker (``recv``), plus reply routing keyed by
  worker id (``send``);
* each worker holds a :class:`Connection` — a bidirectional message
  channel to the coordinator.

Workers usually run in other processes (or on other machines), so they
receive a :class:`Connector` — a small picklable recipe — and open the
real connection themselves.

Delivery contract
-----------------
Transports are **best-effort at-least-once substrates**, deliberately
weaker than TCP's stream guarantees:

* ``send`` may silently drop a message when the peer is unreachable
  (a dead process, a connection mid-reconnect);
* ``recv`` may never see a message that was sent;
* messages are never corrupted and never invented, and a single
  ``send`` may be observed at most a small number of times (channel
  fault wrappers can duplicate deliberately).

The runtime's seq/reply-cache retry machinery is what turns this into
a reliable RPC layer, which is exactly the point: a dropped TCP
connection then needs no special handling — it is indistinguishable
from a dropped message, and the same retry recovers both.
"""

from __future__ import annotations

import abc
from typing import Any, Optional, Tuple

__all__ = [
    "Connection",
    "Connector",
    "Listener",
    "Transport",
    "TransportClosed",
    "TransportError",
    "TransportTimeout",
]


class TransportError(RuntimeError):
    """Base class for transport failures."""


class TransportTimeout(TransportError):
    """``recv`` waited out its timeout with nothing delivered."""


class TransportClosed(TransportError):
    """The endpoint was closed locally; no further traffic is possible."""


class Connection(abc.ABC):
    """A worker's bidirectional message channel to the coordinator."""

    @abc.abstractmethod
    def send(self, message: Any) -> None:
        """Best-effort send; an unreachable peer drops the message."""

    @abc.abstractmethod
    def recv(self, timeout: Optional[float] = None) -> Any:
        """Next message from the coordinator.

        Raises :class:`TransportTimeout` when nothing arrives within
        ``timeout`` seconds (``None`` blocks indefinitely).
        """

    @abc.abstractmethod
    def close(self) -> None:
        """Release the channel; idempotent."""

    def take_epoch_change(self) -> bool:
        """Consume the "coordinator restarted" flag, if the transport
        tracks one.

        Network transports that handshake on every reconnection learn
        the server's epoch (its incarnation counter over one checkpoint
        directory).  This returns True exactly once after the observed
        epoch changes — the worker must then re-reconcile its interval
        copy against the recovered coordinator (eq. 14) instead of
        trusting state restored from a snapshot.  Transports without a
        handshake (in-process queues) never restart out from under the
        worker and keep this False.
        """
        return False


class Listener(abc.ABC):
    """The coordinator's side: one merged inbox, reply routing by worker."""

    @abc.abstractmethod
    def recv(self, timeout: Optional[float] = None) -> Any:
        """Next worker message from any connection.

        Raises :class:`TransportTimeout` when nothing arrives within
        ``timeout`` seconds.
        """

    @abc.abstractmethod
    def send(self, worker: str, reply: Any) -> None:
        """Route ``reply`` to ``worker``; dropped if it is unreachable."""

    def flush(self) -> None:
        """Release any internally buffered traffic (fault wrappers)."""

    @property
    def address(self) -> Optional[Tuple[str, int]]:
        """``(host, port)`` for network listeners, ``None`` otherwise."""
        return None

    @abc.abstractmethod
    def close(self) -> None:
        """Stop accepting and release resources; idempotent."""


class Connector(abc.ABC):
    """A picklable recipe for opening a worker's :class:`Connection`.

    Built in the coordinator process, shipped to the worker (over fork
    or a command line), and opened there — so transports that need
    per-worker setup on the coordinator side (in-process reply queues)
    and transports that need it on the worker side (a TCP client
    socket) present the same shape to ``worker_main``.
    """

    @abc.abstractmethod
    def connect(self, worker_id: str) -> Connection:
        """Open the channel for ``worker_id``."""


class Transport(abc.ABC):
    """Factory tying the two sides together for one run."""

    @abc.abstractmethod
    def listen(self) -> Listener:
        """Create the coordinator-side listener (binds ports, etc.)."""

    @abc.abstractmethod
    def connector_for(self, worker_id: str) -> Connector:
        """A picklable connector a worker uses to reach the listener."""

    @abc.abstractmethod
    def close(self) -> None:
        """Tear down the transport; idempotent."""

"""The original multiprocessing-queue channel as a transport backend.

One shared request queue (all workers -> coordinator) plus one reply
queue per worker (coordinator -> that worker) — exactly the wiring the
runtime used before the transport abstraction, now expressed behind
the :class:`~repro.grid.net.transport.Listener` /
:class:`~repro.grid.net.transport.Connection` interface so
``launcher.py`` and ``bbprocess.py`` are written once for every
backend.

Messages cross as pickled objects; no framing is involved.  Per-worker
reply queues are created in the coordinator process (``connector_for``
must run before the fork) and inherited by the worker, which makes the
connector trivially picklable.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
from typing import Any, Dict, Optional

from repro.grid.net.transport import (
    Connection,
    Connector,
    Listener,
    Transport,
    TransportError,
    TransportTimeout,
)

__all__ = [
    "InProcessConnection",
    "InProcessConnector",
    "InProcessListener",
    "InProcessTransport",
]


class InProcessConnection(Connection):
    """Worker side of the queue pair."""

    def __init__(self, request_queue: Any, reply_queue: Any):
        self._request_queue = request_queue
        self._reply_queue = reply_queue

    def send(self, message: Any) -> None:
        self._request_queue.put(message)

    def recv(self, timeout: Optional[float] = None) -> Any:
        try:
            return self._reply_queue.get(timeout=timeout)
        except queue_mod.Empty:
            raise TransportTimeout(
                f"no reply within {timeout}s"
            ) from None

    def close(self) -> None:
        pass  # queues are owned by the transport


class InProcessConnector(Connector):
    """Fork-inheritable recipe: both queues already exist."""

    def __init__(self, request_queue: Any, reply_queue: Any):
        self._request_queue = request_queue
        self._reply_queue = reply_queue

    def connect(self, worker_id: str) -> InProcessConnection:
        return InProcessConnection(self._request_queue, self._reply_queue)


class InProcessListener(Listener):
    """Coordinator side: drain the shared queue, route by worker id."""

    def __init__(self, request_queue: Any):
        self._request_queue = request_queue
        self._reply_queues: Dict[str, Any] = {}

    def register(self, worker_id: str, reply_queue: Any) -> None:
        self._reply_queues[worker_id] = reply_queue

    def recv(self, timeout: Optional[float] = None) -> Any:
        try:
            return self._request_queue.get(timeout=timeout)
        except queue_mod.Empty:
            raise TransportTimeout(
                f"no message within {timeout}s"
            ) from None

    def send(self, worker: str, reply: Any) -> None:
        try:
            self._reply_queues[worker].put(reply)
        except KeyError:
            raise TransportError(
                f"unknown worker {worker!r}: no reply queue registered"
            ) from None

    def close(self) -> None:
        pass


class InProcessTransport(Transport):
    """Queue-pair transport for workers forked from this process."""

    def __init__(self, ctx: Any = None):
        if ctx is None:
            ctx = mp.get_context("fork") if hasattr(mp, "get_context") else mp
        self._ctx = ctx
        self._listener: Optional[InProcessListener] = None

    def listen(self) -> InProcessListener:
        if self._listener is None:
            self._listener = InProcessListener(self._ctx.Queue())
        return self._listener

    def connector_for(self, worker_id: str) -> InProcessConnector:
        listener = self.listen()
        reply_queue = self._ctx.Queue()
        listener.register(worker_id, reply_queue)
        return InProcessConnector(listener._request_queue, reply_queue)

    def close(self) -> None:
        pass

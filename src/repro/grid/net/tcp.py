"""TCP transport: asyncio coordinator server, blocking worker client.

The coordinator side (:class:`TcpListener`) runs an asyncio server on
a background thread: one task per client connection reads frames
(:mod:`repro.grid.net.framing`), answers :class:`Hello` with
:class:`Welcome`, swallows :class:`Heartbeat`, and funnels every
protocol message into a thread-safe inbox the coordinator pump drains
exactly like a queue.  Replies are routed to the connection that last
said Hello for that worker id.

The worker side (:class:`TcpClientConnection`) is deliberately a plain
blocking socket — the B&B process is single-threaded compute with
occasional RPCs, and a blocking client keeps ``worker_main`` identical
across backends.  It maintains the connection lazily:

* **connect / reconnect with capped, decorrelated-jittered backoff**
  (:func:`~repro.grid.net.backoff.decorrelated_jitter`), so a fleet of
  workers that lost the coordinator together does not thundering-herd
  it on recovery;
* **heartbeats** from a tiny daemon thread, so the server can tell a
  half-open peer (dead, but the OS never sent a FIN/RST) from a worker
  that is just exploring a long slice;
* **drop-equals-drop semantics**: a send that fails after one
  reconnect attempt is silently dropped, and a connection lost while a
  reply was in flight simply loses the reply — either way the worker's
  at-least-once RPC layer retries with the same seq and the
  coordinator's reply cache answers idempotently.  A broken connection
  is indistinguishable from a dropped message *by construction*.

:class:`SocketFaults` adds socket-level chaos: the client hard-resets
(RST via ``SO_LINGER 0``) its own connection every N sent frames,
which exercises kill-and-reconnect mid-slice without touching the
worker process.
"""

from __future__ import annotations

import asyncio
import queue as queue_mod
import random
import socket
import struct
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.grid.net.backoff import decorrelated_jitter
from repro.grid.net.framing import (
    MAX_FRAME_BYTES,
    FrameBuffer,
    FrameError,
    Heartbeat,
    Hello,
    Welcome,
    decode_message,
    encode_frame,
)
from repro.grid.net.transport import (
    Connection,
    Connector,
    Listener,
    Transport,
    TransportClosed,
    TransportError,
    TransportTimeout,
)

__all__ = [
    "SocketFaults",
    "TcpClientConnection",
    "TcpConnector",
    "TcpListener",
    "TcpTransport",
]

_HEADER = struct.Struct("!I")
_RECV_CHUNK = 65536


@dataclass(frozen=True)
class SocketFaults:
    """Client-side socket chaos, deterministic by construction.

    ``reset_after_sends=N`` aborts the connection (RST, not FIN) after
    every N protocol frames the worker sends — the reply to the Nth
    frame is lost with the connection, forcing the reconnect + same-seq
    retry path in the middle of live slices.
    """

    reset_after_sends: Optional[int] = None

    def __post_init__(self) -> None:
        if self.reset_after_sends is not None and self.reset_after_sends < 1:
            raise ValueError("reset_after_sends must be >= 1")


class TcpListener(Listener):
    """Coordinator-side asyncio server behind the blocking Listener API."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        spec_wire: Optional[Dict[str, Any]] = None,
        peer_timeout: Optional[float] = 30.0,
        epoch: int = 0,
    ):
        self._host = host
        self._requested_port = port
        self._spec_wire = spec_wire
        self._peer_timeout = peer_timeout
        self._epoch = epoch
        self._inbox: "queue_mod.Queue[Any]" = queue_mod.Queue()
        self._writers: Dict[str, asyncio.StreamWriter] = {}
        self._all_writers: set = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._address: Optional[Tuple[str, int]] = None
        self._startup_error: Optional[BaseException] = None
        self._closing = False
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="tcp-listener", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._startup_error is not None:
            raise TransportError(
                f"cannot listen on {host}:{port}: {self._startup_error}"
            )
        if self._address is None:
            raise TransportError(f"listener on {host}:{port} failed to start")

    # ---------------------------------------------------------- loop side
    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
        finally:
            self._started.set()  # belt and braces for startup failures
            loop.close()

    async def _main(self) -> None:
        self._stop = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle_client, self._host, self._requested_port
            )
        except OSError as exc:
            self._startup_error = exc
            self._started.set()
            return
        sockname = server.sockets[0].getsockname()
        self._address = (sockname[0], sockname[1])
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            for writer in list(self._all_writers):
                writer.close()

    async def _read_exactly(self, reader: asyncio.StreamReader, n: int) -> bytes:
        if self._peer_timeout is None:
            return await reader.readexactly(n)
        # Any traffic (heartbeats included) restarts the clock; a peer
        # silent past the timeout is treated as half-open and dropped.
        return await asyncio.wait_for(
            reader.readexactly(n), timeout=self._peer_timeout
        )

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._all_writers.add(writer)
        worker: Optional[str] = None
        try:
            while not self._closing:
                try:
                    header = await self._read_exactly(reader, _HEADER.size)
                    (length,) = _HEADER.unpack(header)
                    if length > MAX_FRAME_BYTES:
                        break  # garbage or attack: poison this conn only
                    payload = await self._read_exactly(reader, length)
                except (
                    asyncio.IncompleteReadError,
                    asyncio.TimeoutError,
                    asyncio.CancelledError,
                    ConnectionError,
                    OSError,
                ):
                    break
                try:
                    message = decode_message(payload)
                except FrameError:
                    break  # undecodable stream: drop the connection
                if isinstance(message, Hello):
                    worker = message.worker
                    stale = self._writers.get(worker)
                    self._writers[worker] = writer
                    if stale is not None and stale is not writer:
                        stale.close()  # a reconnect supersedes the old conn
                    try:
                        writer.write(
                            encode_frame(
                                Welcome(
                                    spec=self._spec_wire, epoch=self._epoch
                                )
                            )
                        )
                        await writer.drain()
                    except (ConnectionError, OSError):
                        break
                elif isinstance(message, Heartbeat):
                    continue  # the read itself refreshed the peer clock
                else:
                    self._inbox.put(message)
        finally:
            self._all_writers.discard(writer)
            if worker is not None and self._writers.get(worker) is writer:
                del self._writers[worker]
            try:
                writer.close()
            except Exception:
                pass

    # ------------------------------------------------------- blocking side
    @property
    def address(self) -> Optional[Tuple[str, int]]:
        return self._address

    def connected_workers(self) -> List[str]:
        """Workers with a live, identified connection right now."""
        return sorted(self._writers)

    def recv(self, timeout: Optional[float] = None) -> Any:
        try:
            if timeout is None:
                return self._inbox.get()
            return self._inbox.get(timeout=timeout)
        except queue_mod.Empty:
            raise TransportTimeout(f"no message within {timeout}s") from None

    def send(self, worker: str, reply: Any) -> None:
        if self._closing:
            return
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        data = encode_frame(reply)

        def _write() -> None:
            w = self._writers.get(worker)
            if w is None or w.is_closing():
                return  # worker unreachable: the reply is dropped;
                # its same-seq retry will be answered from the cache
            try:
                w.write(data)
            except Exception:
                pass

        try:
            loop.call_soon_threadsafe(_write)
        except RuntimeError:
            pass  # loop shut down between the check and the call

    def close(self) -> None:
        if self._closing:
            return
        self._closing = True
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass
        self._thread.join(timeout=5.0)


class TcpClientConnection(Connection):
    """Blocking worker-side connection with reconnect and heartbeats."""

    def __init__(
        self,
        host: str,
        port: int,
        worker_id: str,
        *,
        power: float = 1.0,
        connect_timeout: float = 10.0,
        reconnect_base: float = 0.05,
        reconnect_cap: float = 2.0,
        heartbeat_interval: Optional[float] = 2.0,
        io_timeout: float = 0.25,
        rng: Optional[random.Random] = None,
        faults: Optional[SocketFaults] = None,
        peer_timeout: Optional[float] = None,
        max_reconnect_attempts: Optional[int] = None,
    ):
        self._host = host
        self._port = port
        self._worker = worker_id
        self._power = power
        self._connect_timeout = connect_timeout
        self._reconnect_base = reconnect_base
        self._reconnect_cap = reconnect_cap
        self._io_timeout = io_timeout
        self._rng = rng if rng is not None else random.Random(worker_id)
        self._faults = faults
        self._peer_timeout = peer_timeout
        self._max_reconnect_attempts = max_reconnect_attempts
        self._sock: Optional[socket.socket] = None
        self._buf = FrameBuffer()
        self._inbound: deque = deque()
        self._send_lock = threading.RLock()
        self._backoff = reconnect_base
        self._sent_frames = 0
        self._failed_attempts = 0
        self._exhausted = False
        self._last_rx = time.monotonic()
        self._last_epoch = 0
        self._epoch_changed = False
        self._closed = threading.Event()
        self.welcome: Optional[Welcome] = None
        #: total (re)connections that completed the Hello/Welcome handshake
        self.connects = 0
        self._heartbeat_thread: Optional[threading.Thread] = None
        if heartbeat_interval is not None and heartbeat_interval > 0:
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop,
                args=(heartbeat_interval,),
                name=f"heartbeat-{worker_id}",
                daemon=True,
            )
            self._heartbeat_thread.start()

    # ------------------------------------------------------------- plumbing
    def _connect_once(self) -> bool:
        try:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._connect_timeout
            )
        except OSError:
            return False
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(self._io_timeout)
            buf = FrameBuffer()
            sock.sendall(
                encode_frame(
                    Hello(self._worker, self._power, epoch=self._last_epoch)
                )
            )
            deadline = time.monotonic() + self._connect_timeout
            welcome: Optional[Welcome] = None
            while welcome is None:
                if time.monotonic() >= deadline:
                    raise OSError("no Welcome before the handshake deadline")
                try:
                    data = sock.recv(_RECV_CHUNK)
                except socket.timeout:
                    continue
                if not data:
                    raise OSError("connection closed during the handshake")
                for payload in buf.feed(data):
                    message = decode_message(payload)
                    if isinstance(message, Welcome):
                        welcome = message
                    elif not isinstance(message, Heartbeat):
                        self._inbound.append(message)
        except (OSError, FrameError):
            try:
                sock.close()
            except OSError:
                pass
            return False
        self._sock = sock
        self._buf = buf
        self._note_welcome(welcome)
        self.connects += 1
        self._backoff = self._reconnect_base
        self._failed_attempts = 0
        self._last_rx = time.monotonic()
        return True

    def _note_welcome(self, welcome: Welcome) -> None:
        self.welcome = welcome
        if (
            welcome.epoch != 0
            and self._last_epoch != 0
            and welcome.epoch != self._last_epoch
        ):
            # The coordinator we reconnected to is a new incarnation
            # recovered from a checkpoint: flag it so the worker can
            # re-reconcile its interval copy instead of trusting the
            # (possibly stale) snapshot state.
            self._epoch_changed = True
        self._last_epoch = welcome.epoch

    def _ensure_connected_locked(self, deadline: Optional[float]) -> bool:
        while not self._closed.is_set():
            if self._sock is not None:
                return True
            if self._exhausted:
                return False
            if self._connect_once():
                return True
            self._failed_attempts += 1
            if (
                self._max_reconnect_attempts is not None
                and self._failed_attempts >= self._max_reconnect_attempts
            ):
                self._exhausted = True
                return False
            delay = decorrelated_jitter(
                self._rng, self._reconnect_base, self._backoff,
                self._reconnect_cap,
            )
            self._backoff = delay
            if deadline is not None and time.monotonic() + delay >= deadline:
                return False
            time.sleep(delay)
        return False

    def _drop_locked(self, expected: Optional[socket.socket] = None) -> None:
        if expected is not None and self._sock is not expected:
            return  # someone already reconnected past this socket
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._buf = FrameBuffer()

    def _abort_locked(self) -> None:
        """Hard reset (RST) — the fault-injection shape of a dead network."""
        sock = self._sock
        if sock is None:
            return
        try:
            sock.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
        except OSError:
            pass
        self._drop_locked()

    def _heartbeat_loop(self, interval: float) -> None:
        while not self._closed.wait(interval):
            with self._send_lock:
                sock = self._sock
                if sock is None:
                    continue  # never dials: reconnect is send/recv's job
                try:
                    sock.sendall(encode_frame(Heartbeat(self._worker)))
                except OSError:
                    self._drop_locked(expected=sock)

    # ------------------------------------------------------------ interface
    def open(self, timeout: Optional[float] = None) -> None:
        """Eagerly connect (and handshake); raises on failure.

        Optional — ``send``/``recv`` connect lazily — but standalone
        workers call it to obtain the :class:`Welcome` (and its problem
        spec) before starting the B&B loop.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._send_lock:
            if not self._ensure_connected_locked(deadline):
                raise TransportError(
                    f"cannot reach coordinator at {self._host}:{self._port}"
                )

    def send(self, message: Any) -> None:
        if self._closed.is_set():
            return
        data = encode_frame(message)
        with self._send_lock:
            deadline = time.monotonic() + self._connect_timeout
            if not self._ensure_connected_locked(deadline):
                return  # unreachable: dropped, the RPC retry recovers
            try:
                self._sock.sendall(data)
            except OSError:
                self._drop_locked()
                if not self._ensure_connected_locked(deadline):
                    return
                try:
                    self._sock.sendall(data)
                except OSError:
                    self._drop_locked()
                    return
            self._sent_frames += 1
            faults = self._faults
            if (
                faults is not None
                and faults.reset_after_sends
                and self._sent_frames % faults.reset_after_sends == 0
            ):
                self._abort_locked()

    def recv(self, timeout: Optional[float] = None) -> Any:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._inbound:
                return self._inbound.popleft()
            if self._closed.is_set():
                raise TransportClosed("connection closed")
            if deadline is not None and time.monotonic() >= deadline:
                raise TransportTimeout(f"no reply within {timeout}s")
            with self._send_lock:
                ok = self._ensure_connected_locked(deadline)
                sock, buf = self._sock, self._buf
            if not ok or sock is None:
                if self._exhausted:
                    raise TransportError(
                        f"coordinator at {self._host}:{self._port} "
                        f"unreachable after "
                        f"{self._max_reconnect_attempts} reconnect attempts"
                    )
                if deadline is None:
                    continue
                raise TransportTimeout(f"no reply within {timeout}s")
            try:
                data = sock.recv(_RECV_CHUNK)
            except socket.timeout:
                if (
                    self._peer_timeout is not None
                    and time.monotonic() - self._last_rx > self._peer_timeout
                ):
                    # Half-open link: the socket looks connected but the
                    # peer has been silent past the budget — reconnect.
                    with self._send_lock:
                        self._drop_locked(expected=sock)
                continue
            except OSError:
                with self._send_lock:
                    self._drop_locked(expected=sock)
                continue
            if not data:
                with self._send_lock:
                    self._drop_locked(expected=sock)
                continue
            self._last_rx = time.monotonic()
            try:
                payloads = buf.feed(data)
            except FrameError:
                with self._send_lock:
                    self._drop_locked(expected=sock)
                continue
            for payload in payloads:
                try:
                    message = decode_message(payload)
                except FrameError:
                    continue
                if isinstance(message, Heartbeat):
                    continue
                if isinstance(message, Welcome):
                    self._note_welcome(message)
                    continue
                self._inbound.append(message)

    def take_epoch_change(self) -> bool:
        with self._send_lock:
            changed = self._epoch_changed
            self._epoch_changed = False
            return changed

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        if self._heartbeat_thread is not None:
            self._heartbeat_thread.join(timeout=2.0)
        with self._send_lock:
            self._drop_locked()


@dataclass(frozen=True)
class TcpConnector(Connector):
    """Picklable recipe for a worker's TCP connection."""

    host: str
    port: int
    power: float = 1.0
    connect_timeout: float = 10.0
    reconnect_base: float = 0.05
    reconnect_cap: float = 2.0
    heartbeat_interval: Optional[float] = 2.0
    faults: Optional[SocketFaults] = None
    peer_timeout: Optional[float] = None
    max_reconnect_attempts: Optional[int] = None

    def connect(self, worker_id: str) -> TcpClientConnection:
        return TcpClientConnection(
            self.host,
            self.port,
            worker_id,
            power=self.power,
            connect_timeout=self.connect_timeout,
            reconnect_base=self.reconnect_base,
            reconnect_cap=self.reconnect_cap,
            heartbeat_interval=self.heartbeat_interval,
            faults=self.faults,
            peer_timeout=self.peer_timeout,
            max_reconnect_attempts=self.max_reconnect_attempts,
        )


class TcpTransport(Transport):
    """Loopback-or-LAN TCP transport for one coordinator run."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        spec_wire: Optional[Dict[str, Any]] = None,
        peer_timeout: Optional[float] = 30.0,
        connect_timeout: float = 10.0,
        heartbeat_interval: Optional[float] = 2.0,
        faults: Optional[SocketFaults] = None,
    ):
        self._host = host
        self._port = port
        self._spec_wire = spec_wire
        self._peer_timeout = peer_timeout
        self._connect_timeout = connect_timeout
        self._heartbeat_interval = heartbeat_interval
        self._faults = faults
        self._listener: Optional[TcpListener] = None

    def listen(self) -> TcpListener:
        if self._listener is None:
            self._listener = TcpListener(
                self._host,
                self._port,
                spec_wire=self._spec_wire,
                peer_timeout=self._peer_timeout,
            )
        return self._listener

    def connector_for(self, worker_id: str) -> TcpConnector:
        listener = self.listen()
        host, port = listener.address
        return TcpConnector(
            host,
            port,
            connect_timeout=self._connect_timeout,
            heartbeat_interval=self._heartbeat_interval,
            faults=self._faults,
        )

    def close(self) -> None:
        if self._listener is not None:
            self._listener.close()

"""Exploration statistics gathered by the B&B engine.

The paper's Table 2 reports node counts (explored, redundant) for the
whole grid run; these per-engine counters are the building blocks that
the coordinator, the simulator and the benchmarks aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["ExplorationStats", "Incumbent"]


@dataclass
class ExplorationStats:
    """Counters for one exploration (or a merge of several).

    ``nodes_explored`` counts every node taken off the DFS stack, which
    matches the paper's "explored nodes" (internal nodes and leaves,
    whether pruned or decomposed).
    """

    nodes_explored: int = 0
    nodes_decomposed: int = 0
    nodes_pruned: int = 0
    leaves_evaluated: int = 0
    improvements: int = 0
    bound_evaluations: int = 0
    nodes_skipped_out_of_range: int = 0

    def merge(self, other: "ExplorationStats") -> None:
        """Accumulate another stats object into this one (in place)."""
        self.nodes_explored += other.nodes_explored
        self.nodes_decomposed += other.nodes_decomposed
        self.nodes_pruned += other.nodes_pruned
        self.leaves_evaluated += other.leaves_evaluated
        self.improvements += other.improvements
        self.bound_evaluations += other.bound_evaluations
        self.nodes_skipped_out_of_range += other.nodes_skipped_out_of_range

    def as_dict(self) -> Dict[str, int]:
        return {
            "nodes_explored": self.nodes_explored,
            "nodes_decomposed": self.nodes_decomposed,
            "nodes_pruned": self.nodes_pruned,
            "leaves_evaluated": self.leaves_evaluated,
            "improvements": self.improvements,
            "bound_evaluations": self.bound_evaluations,
            "nodes_skipped_out_of_range": self.nodes_skipped_out_of_range,
        }


@dataclass
class Incumbent:
    """Best solution found so far: the paper's ``SOLUTION`` payload.

    ``cost`` is ``float('inf')`` when no solution is known yet, in which
    case ``solution`` is ``None``.  Costs compare with plain ``<`` — the
    library consistently minimises.
    """

    cost: float = float("inf")
    solution: object = None

    def improves_on(self, other: "Incumbent") -> bool:
        return self.cost < other.cost

    def update(self, cost: float, solution: object) -> bool:
        """Adopt (cost, solution) if strictly better; report whether it was."""
        if cost < self.cost:
            self.cost = cost
            self.solution = solution
            return True
        return False

    def copy(self) -> "Incumbent":
        return Incumbent(self.cost, self.solution)

"""The unfold operator: interval -> minimal active list (paper §3.5).

``nodes([A, B))`` is the unique minimal list of nodes that covers
exactly the leaf numbers in ``[A, B)`` (eq. 11): a node belongs to the
list iff its range is included in the interval while its father's range
is not.  The paper computes it with a bound-free B&B whose elimination
rule is eq. 12 — eliminate a node when its range is included in the
interval (emit it) or disjoint from it (discard it), decompose
otherwise.

Only nodes whose range *straddles* an interval boundary are decomposed;
there are at most two such nodes per depth (one per boundary), so the
operator performs fewer than ``2 P`` decompositions on a tree of leaf
depth ``P`` — the low-cost guarantee of §3.5.  The implementation below
additionally skips non-overlapping children arithmetically instead of
testing each of them, so its cost is ``O(P * max_branching)`` at worst
and independent of the interval length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.active_list import ActiveList, ActiveNode
from repro.core.interval import Interval
from repro.core.tree import TreeShape

__all__ = ["unfold", "unfold_with_stats", "UnfoldStats"]


@dataclass
class UnfoldStats:
    """Cost accounting for one unfold call (for the §3.5 cost claim)."""

    decompositions: int = 0
    nodes_emitted: int = 0
    children_examined: int = 0


def unfold(shape: TreeShape, interval: Interval) -> ActiveList:
    """Deduce the minimal active list covering ``interval`` (eqs. 11–13).

    The interval is clipped to the tree's leaf numbers ``[0, W)`` first;
    an empty (or fully out-of-range) interval unfolds to an empty list.
    """
    active, _ = unfold_with_stats(shape, interval)
    return active


def unfold_with_stats(shape, interval):
    """Like :func:`unfold` but also return an :class:`UnfoldStats`.

    Returns
    -------
    (ActiveList, UnfoldStats)
    """
    stats = UnfoldStats()
    clipped = interval.intersect(Interval(0, shape.total_leaves))
    if clipped.is_empty():
        return ActiveList(shape), stats

    weights = shape.weights()
    nodes: List[ActiveNode] = []

    def visit(ranks: tuple, begin: int, depth: int) -> None:
        node_rng = Interval(begin, begin + weights[depth])
        if clipped.contains_interval(node_rng):
            # eq. 12 first case + eq. 13: eliminated with range included
            # in [A, B) => member of the active list.
            stats.nodes_emitted += 1
            nodes.append(ActiveNode(shape, ranks))
            return
        # The caller only recurses into overlapping children, and a
        # non-included overlapping node must be decomposed (eq. 12).
        stats.decompositions += 1
        child_w = weights[depth + 1]
        # Arithmetic clip: child r covers [begin + r*w, begin + (r+1)*w).
        lo = max(0, (clipped.begin - begin) // child_w)
        hi = min(
            shape.branching[depth] - 1,
            (clipped.end - begin - 1) // child_w,
        )
        for rank in range(lo, hi + 1):
            stats.children_examined += 1
            visit(ranks + (rank,), begin + rank * child_w, depth + 1)

    visit((), 0, 0)
    return ActiveList(shape, nodes), stats

"""``INTERVALS`` — the coordinator's view of all unexplored work (§4).

The coordinator "keeps a copy of all the not yet explored intervals".
Each copy is an :class:`IntervalRecord` carrying the interval and the
set of B&B processes currently exploring it (several after a
duplication, none for orphaned work awaiting a requester).

The set provides the paper's coordinator-side operations:

* **update** (checkpointing, §4.1) — reconcile a worker's reported
  interval with its copy through the intersection operator (eq. 14);
* **assign** (load balancing, §4.2) — selection + partitioning with a
  power-proportional split point and a duplication threshold;
* **release** (fault tolerance, §4.1) — detach a dead worker so its
  last copy can be handed out again;
* **termination detection** (§4.3) — the run is over exactly when the
  set becomes empty; empty intervals are dropped automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.interval import Interval
from repro.core.operators import partition_point, requester_share_length
from repro.exceptions import IntervalError

__all__ = ["IntervalRecord", "IntervalSet", "Assignment"]

WorkerId = Hashable


@dataclass
class IntervalRecord:
    """One coordinator-side copy: the interval and who explores it."""

    interval: Interval
    owners: Set[WorkerId] = field(default_factory=set)

    def is_assigned(self) -> bool:
        return bool(self.owners)


@dataclass
class Assignment:
    """Result of a successful work request."""

    interval: Interval
    duplicated: bool


class IntervalSet:
    """The coordinator's ``INTERVALS`` with its operators and counters.

    Parameters
    ----------
    duplication_threshold:
        Intervals shorter than this are *duplicated* rather than split
        (§4.2) — the requester explores the same numbers as the holder,
        bounding the tail latency of tiny work units at the price of
        redundant node exploration (paper measured < 0.4 %).
    """

    def __init__(self, duplication_threshold: int = 0):
        if duplication_threshold < 0:
            raise IntervalError("duplication threshold must be >= 0")
        self.duplication_threshold = duplication_threshold
        self._records: Dict[int, IntervalRecord] = {}
        self._next_id = 0
        # Table 2 counters
        self.allocations = 0
        self.splits = 0
        self.duplications = 0
        self.updates = 0
        self.duplicated_length_assigned = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def initial(
        cls, root_range: Interval, duplication_threshold: int = 0
    ) -> "IntervalSet":
        """INTERVALS at the start of a run: the range of the root (§4.3)."""
        s = cls(duplication_threshold)
        s.add(root_range)
        return s

    def add(self, interval: Interval, owners: Sequence[WorkerId] = ()) -> int:
        """Insert a non-empty interval; return its record id."""
        if interval.is_empty():
            raise IntervalError(f"refusing to add empty interval {interval}")
        rid = self._next_id
        self._next_id += 1
        self._records[rid] = IntervalRecord(interval, set(owners))
        return rid

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def cardinality(self) -> int:
        """Number of intervals ("almost equal to the number of processes")."""
        return len(self._records)

    @property
    def size(self) -> int:
        """Sum of interval lengths = unexplored solutions left (§4.3)."""
        return sum(rec.interval.length for rec in self._records.values())

    def is_empty(self) -> bool:
        """Termination condition: nothing left to explore."""
        return not self._records

    def records(self) -> Mapping[int, IntervalRecord]:
        return dict(self._records)

    def intervals(self) -> List[Interval]:
        """All intervals, sorted by begin (stable external view)."""
        return sorted(
            (rec.interval for rec in self._records.values()),
            key=lambda iv: (iv.begin, iv.end),
        )

    def record_for_worker(self, worker: WorkerId) -> Optional[int]:
        """Id of the record ``worker`` currently owns, if any."""
        for rid, rec in self._records.items():
            if worker in rec.owners:
                return rid
        return None

    def covered_union_length(self) -> int:
        """Length of the union of all intervals (duplicates counted once).

        Used by the no-lost-work invariant tests: together with the
        explored prefix this must cover the whole root range.
        """
        total = 0
        current: Optional[Interval] = None
        for iv in self.intervals():
            if current is None:
                current = iv
            elif iv.begin <= current.end:
                current = Interval(current.begin, max(current.end, iv.end))
            else:
                total += current.length
                current = iv
        if current is not None:
            total += current.length
        return total

    # ------------------------------------------------------------------
    # the paper's coordinator operations
    # ------------------------------------------------------------------
    def update(self, worker: WorkerId, reported: Interval) -> Interval:
        """Reconcile a worker's interval with its copy (eq. 14, §4.1).

        Returns the reconciled interval the worker must now restrict
        itself to.  An empty result means the worker's work is gone
        (finished, or fully reassigned after the worker was presumed
        dead) and it should request a new unit.

        After a farmer recovery the ownership map is lost; a report
        that overlaps an unowned record re-claims *its piece* of it.
        The leftover parts of the record stay in the set as unowned
        work: the recovered snapshot may be stale, so the coordinator
        cannot tell whether they were explored — keeping them costs at
        worst redundant re-exploration, dropping them would lose work
        (the §4.1 guarantee is re-exploration, never loss).
        """
        self.updates += 1
        rid = self.record_for_worker(worker)
        if rid is not None:
            # Normal path: the worker owns this copy, so everything
            # outside the intersection is known-explored (left) or
            # known-reassigned (right) — plain eq. 14.
            rec = self._records[rid]
            merged = rec.interval.intersect(reported)
            if merged.is_empty():
                del self._records[rid]
                return merged
            rec.interval = merged
            return merged

        rid = self._match_unowned(reported)
        if rid is None:
            return Interval(reported.end, reported.end)
        rec = self._records[rid]
        piece = rec.interval.intersect(reported)
        if piece.is_empty():
            return piece
        left = Interval(rec.interval.begin, piece.begin)
        right = Interval(piece.end, rec.interval.end)
        rec.interval = piece
        rec.owners.add(worker)
        if not left.is_empty():
            self.add(left)
        if not right.is_empty():
            self.add(right)
        return piece

    def _match_unowned(self, reported: Interval) -> Optional[int]:
        best: Optional[int] = None
        best_overlap = 0
        for rid, rec in self._records.items():
            if rec.owners:
                continue
            overlap = rec.interval.intersect(reported).length
            if overlap > best_overlap:
                best_overlap = overlap
                best = rid
        return best

    def assign(
        self,
        requester: WorkerId,
        requester_power: float = 1.0,
        holder_powers: Optional[Mapping[WorkerId, float]] = None,
    ) -> Optional[Assignment]:
        """Serve a work request: selection then partitioning (§4.2).

        ``holder_powers`` maps worker ids to their processing power (a
        missing worker counts as power 1).  Returns ``None`` when
        INTERVALS is empty — the requester must terminate (§4.3).
        """
        if requester_power < 0:
            raise IntervalError("requester power must be >= 0")
        if not self._records:
            return None
        # A requester never splits work with itself: drop any stale
        # ownership first (it is asking because it has nothing left).
        self.release(requester)
        if not self._records:
            return None

        def power_of(rec: IntervalRecord) -> float:
            if not rec.owners:
                return 0.0  # the paper's virtual null-power process
            if holder_powers is None:
                return float(len(rec.owners))
            return float(sum(holder_powers.get(w, 1.0) for w in rec.owners))

        best_rid = None
        best_share = -1
        for rid, rec in sorted(self._records.items()):
            share = requester_share_length(
                rec.interval, power_of(rec), requester_power
            )
            if share > best_share:
                best_share = share
                best_rid = rid
        assert best_rid is not None
        rec = self._records[best_rid]
        self.allocations += 1

        if not rec.owners:
            # Null-power virtual holder: hand the whole interval over
            # ("they are thus assigned entirely to the requesting
            # process") — never a duplication.
            rec.owners = {requester}
            return Assignment(rec.interval, duplicated=False)

        if rec.interval.length < self.duplication_threshold:
            # Duplicate: same numbers, one coordinator copy, two explorers.
            rec.owners.add(requester)
            self.duplications += 1
            self.duplicated_length_assigned += rec.interval.length
            return Assignment(rec.interval, duplicated=True)

        point = partition_point(rec.interval, power_of(rec), requester_power)
        left, right = rec.interval.split_at(point)
        if right.is_empty():
            # Degenerate split (e.g. zero requester power on a live
            # holder): fall back to duplication semantics.
            rec.owners.add(requester)
            self.duplications += 1
            self.duplicated_length_assigned += rec.interval.length
            return Assignment(rec.interval, duplicated=True)
        if left.is_empty():
            # Whole interval handed over (unassigned holder).
            rec.interval = right
            rec.owners = {requester}
            return Assignment(right, duplicated=False)
        rec.interval = left  # holder learns of the cut at its next update
        self.add(right, owners=(requester,))
        self.splits += 1
        return Assignment(right, duplicated=False)

    def subtract(self, explored: Interval) -> int:
        """Remove ``explored`` from every copy that overlaps it.

        Journal replay (§4.1 extension): a definitely-explored range is
        carved out of the restored snapshot.  Position subtraction is
        order-insensitive and idempotent, and under the covering
        invariant it can only remove work that was in fact explored —
        duplicated copies each lose their overlap independently.
        Returns the total length removed (duplicates counted per copy).
        """
        removed = 0
        for rid, rec in list(self._records.items()):
            overlap = rec.interval.intersect(explored)
            if overlap.is_empty():
                continue
            removed += overlap.length
            left = Interval(rec.interval.begin, overlap.begin)
            right = Interval(overlap.end, rec.interval.end)
            if left.is_empty() and right.is_empty():
                del self._records[rid]
            elif right.is_empty():
                rec.interval = left
            elif left.is_empty():
                rec.interval = right
            else:
                rec.interval = left
                self.add(right, owners=tuple(rec.owners))
        return removed

    def release(self, worker: WorkerId) -> int:
        """Detach ``worker`` from every record (death or completion).

        Returns the number of records it was detached from.  Records it
        leaves behind stay in the set (owned by the virtual null-power
        process) until another request picks them up — this is the
        §4.1 recovery path.
        """
        count = 0
        for rec in self._records.values():
            if worker in rec.owners:
                rec.owners.discard(worker)
                count += 1
        return count

    # ------------------------------------------------------------------
    # checkpoint payloads (§4.1 — the INTERVALS file)
    # ------------------------------------------------------------------
    def to_payload(self) -> List[Tuple[int, int]]:
        """Ownership-free snapshot: what survives a farmer failure."""
        return [iv.as_tuple() for iv in self.intervals()]

    @classmethod
    def from_payload(
        cls,
        payload: Sequence[Tuple[int, int]],
        duplication_threshold: int = 0,
    ) -> "IntervalSet":
        s = cls(duplication_threshold)
        for pair in payload:
            iv = Interval.from_tuple(pair)
            if not iv.is_empty():
                s.add(iv)
        return s

    def __repr__(self) -> str:
        return (
            f"IntervalSet(cardinality={self.cardinality}, size={self.size}, "
            f"intervals={self.intervals()!r})"
        )

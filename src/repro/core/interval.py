"""Half-open integer intervals — the paper's work-unit representation.

A work unit is "delimited by two leaves of the explored tree, and thus
represented by an interval whose beginning and end are the numbers
associated with the two leaves" (§6).  All the grid machinery
(communication, checkpointing, load balancing) manipulates these
two-integer values instead of explicit node collections.

Intervals are half-open ``[begin, end)`` as in the paper, over Python's
arbitrary-precision integers (leaf numbers reach ``50!`` for Ta056).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.exceptions import IntervalError

__all__ = ["Interval"]


@dataclass(frozen=True, order=True)
class Interval:
    """Immutable half-open interval ``[begin, end)`` of node numbers.

    An interval with ``begin >= end`` is *empty* — the paper's
    coordinator drops those from ``INTERVALS`` automatically.  Empty
    intervals are representable (they arise naturally from intersection
    and exhaustion) but normalise to ``Interval.EMPTY`` for equality of
    emptiness checks via :meth:`is_empty`.
    """

    begin: int
    end: int

    def __post_init__(self) -> None:
        if not isinstance(self.begin, int) or not isinstance(self.end, int):
            raise IntervalError(
                f"interval bounds must be ints, got "
                f"({type(self.begin).__name__}, {type(self.end).__name__})"
            )

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """True when the interval contains no number (begin >= end)."""
        return self.begin >= self.end

    def __len__(self) -> int:  # pragma: no cover - alias of length
        return self.length

    @property
    def length(self) -> int:
        """Number of leaf numbers covered; 0 when empty."""
        return max(0, self.end - self.begin)

    def __contains__(self, number: int) -> bool:
        return self.begin <= number < self.end

    def contains_interval(self, other: "Interval") -> bool:
        """True when ``other`` (non-empty) is a subset of this interval.

        Empty intervals are subsets of everything, matching eq. 12's
        elimination rule (an empty intersection eliminates a node).
        """
        if other.is_empty():
            return True
        return self.begin <= other.begin and other.end <= self.end

    def overlaps(self, other: "Interval") -> bool:
        """True when the intersection is non-empty."""
        return not self.intersect(other).is_empty()

    def is_adjacent_left_of(self, other: "Interval") -> bool:
        """True when ``self.end == other.begin`` (DFS contiguity, eq. 9)."""
        return self.end == other.begin

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def intersect(self, other: "Interval") -> "Interval":
        """Intersection operator (eq. 14).

        The paper uses this to reconcile a worker's live interval with
        its coordinator copy: the worker advances ``begin`` while
        exploring, the load balancer lowers ``end`` when it gives part
        of the work away; ``[max(A, A'), min(B, B'))`` is what remains.
        """
        return Interval(max(self.begin, other.begin), min(self.end, other.end))

    def split_at(self, point: int) -> Tuple["Interval", "Interval"]:
        """Split into ``[begin, point)`` and ``[point, end)``.

        The partitioning operator of §4.2: the holder keeps the left
        part (it is already exploring from ``begin``), the requester
        gets the right part.  ``point`` is clamped to the interval so a
        degenerate split (the paper's "virtual process of null power",
        C == begin) hands the whole interval to the requester.
        """
        point = min(max(point, self.begin), self.end)
        return Interval(self.begin, point), Interval(point, self.end)

    def advance_to(self, new_begin: int) -> "Interval":
        """Interval left after exploration has consumed up to ``new_begin``.

        Workers only ever *increase* ``begin`` (§4.1); a regression is a
        protocol bug and raises.
        """
        if new_begin < self.begin:
            raise IntervalError(
                f"cannot move begin backwards: {new_begin} < {self.begin}"
            )
        return Interval(new_begin, self.end)

    def restrict_end(self, new_end: int) -> "Interval":
        """Interval left after load balancing lowered the end (§4.2)."""
        if new_end > self.end:
            raise IntervalError(
                f"cannot move end forwards: {new_end} > {self.end}"
            )
        return Interval(self.begin, new_end)

    def union_contiguous(self, other: "Interval") -> "Interval":
        """Union of two contiguous or overlapping intervals (eq. 8).

        Raises
        ------
        IntervalError
            If the union is not itself an interval (a gap between the
            operands).  Folding a DFS active list never hits this
            because consecutive ranges are adjacent (eq. 9).
        """
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        if self.end < other.begin or other.end < self.begin:
            raise IntervalError(
                f"union of {self} and {other} is not contiguous"
            )
        return Interval(min(self.begin, other.begin), max(self.end, other.end))

    # ------------------------------------------------------------------
    # serialisation helpers
    # ------------------------------------------------------------------
    def as_tuple(self) -> Tuple[int, int]:
        return (self.begin, self.end)

    @classmethod
    def from_tuple(cls, pair: Tuple[int, int]) -> "Interval":
        begin, end = pair
        return cls(int(begin), int(end))

    def __iter__(self) -> Iterator[int]:
        yield self.begin
        yield self.end

    def __repr__(self) -> str:
        return f"[{self.begin}, {self.end})"


# Canonical empty interval, handy as an identity for unions.
Interval.EMPTY = Interval(0, 0)  # type: ignore[attr-defined]

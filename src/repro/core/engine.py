"""Interval-constrained depth-first Branch and Bound engine.

This is the per-process exploration loop of the paper's approach: a
B&B process owns an interval ``[A, B)`` of node numbers and explores
exactly the leaves numbered inside it, depth first, leftmost first.
The engine is *resumable* — the grid layers drive it in slices with
:meth:`IntervalExplorer.step` so they can interleave exploration with
message handling — and at every pause its frontier folds back to the
remaining interval (``[position, B)``), which is what gets sent to the
coordinator for checkpointing (§4.1).

Correspondence with the paper's four operators (§2):

* **selection** — two strategies over one number-sorted stack.  The
  default (``frontier="dfs"``) is the paper's: the smallest node
  number is always explored next (eq. 9 then holds by construction
  and folding is O(1)).  ``frontier="wave"`` pops *runs* of same-depth
  entries off the top of the stack — up to ``pool_size`` decomposable
  parents per wave — so the pool kernels receive wide pools instead of
  whatever a thin DFS frontier happens to hold.  Waves still always
  take the smallest-numbered entries, so leaves are evaluated in the
  same left-to-right order, the stack stays number-sorted, and the
  fold is still the two integers ``[top, B)`` (see
  :meth:`IntervalExplorer.remaining_interval`);
* **branching** — delegated to :meth:`Problem.branch`;
* **bounding** — delegated to :meth:`Problem.lower_bound`, or, when a
  problem implements :meth:`Problem.bound_children`, evaluated for all
  siblings at once at decomposition time (the batched-kernel structure
  of the GPU-B&B follow-on work); with a pool kernel backend
  (:mod:`repro.core.kernels`) the engine goes further and bounds the
  children of a whole *pool* of same-depth frontier nodes in one
  backend call.  Bounds never depend on the incumbent, so evaluating
  them ahead of DFS order is semantically invisible: cached bounds are
  re-checked against the *current* incumbent when a node is popped,
  and the explored / pruned / decomposed / bound-evaluation totals are
  identical to the per-node path on every backend;
* **elimination** — a node is eliminated when its bound reaches the
  incumbent cost *or* when its number falls outside the owned interval
  (the eq. 12 rule that makes work units independent).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.active_list import ActiveList, ActiveNode
from repro.core.interval import Interval
from repro.core.kernels import PoolEvaluator, pool_evaluator_for
from repro.core.problem import Problem
from repro.core.stats import ExplorationStats, Incumbent
from repro.core.tree import TreeShape
from repro.core.unfold import unfold
from repro.exceptions import EngineError, ProblemError

__all__ = [
    "FRONTIER_CHOICES",
    "IntervalExplorer",
    "StepReport",
    "SolveResult",
    "solve",
    "brute_force_minimum",
]

#: Frontier exploration strategies the engine implements.
FRONTIER_CHOICES: Tuple[str, ...] = ("dfs", "wave")

ImprovementCallback = Callable[[float, Any], None]


@dataclass
class StepReport:
    """Outcome of one :meth:`IntervalExplorer.step` slice."""

    nodes_processed: int
    finished: bool
    improved: bool


@dataclass
class SolveResult:
    """Result of a complete (proof-carrying) exploration."""

    cost: float
    solution: Any
    stats: ExplorationStats
    interval: Interval
    optimal: bool = True
    # Pool-evaluation telemetry (kept out of ExplorationStats so node
    # accounting stays byte-comparable across frontiers and backends):
    # occupancy -> backend calls at that occupancy, and the number of
    # wave-mode width spills.
    pool_occupancy: Dict[int, int] = field(default_factory=dict)
    frontier_spills: int = 0

    def found_solution(self) -> bool:
        return self.solution is not None


class _Entry:
    """One frontier node on the DFS stack.

    ``bound`` caches the node's lower bound when it was computed by a
    batched :meth:`Problem.bound_children` call at decomposition time
    (``None`` on the per-node path); the bound of a node never depends
    on the incumbent, so the cached value stays valid and only the
    prune *comparison* is deferred to pop time.  ``child_bounds``
    likewise caches the bounds of this entry's children when a pool
    kernel evaluated them ahead of the pop (bound-ahead speculation —
    again incumbent-free, so always valid once computed).
    """

    __slots__ = ("ranks", "state", "number", "bound", "child_bounds")

    def __init__(
        self,
        ranks: Tuple[int, ...],
        state: Any,
        number: int,
        bound: Optional[float] = None,
    ):
        self.ranks = ranks
        self.state = state
        self.number = number
        self.bound = bound
        self.child_bounds: Optional[List[float]] = None


class IntervalExplorer:
    """Resumable DFS B&B over one interval of node numbers.

    Parameters
    ----------
    problem:
        The problem to minimise.
    interval:
        Node numbers to own; defaults to the full range of the root.
        Clipped to ``[0, total_leaves)``.
    incumbent:
        Initial best solution (copied); exploration prunes against it.
        The paper initialises this from the coordinator's ``SOLUTION``
        (sharing rule 1, §4.4).
    on_improvement:
        Called ``(cost, solution)`` whenever the local best improves
        (sharing rule 2: "immediately informs the coordinator").
    batched_bounds:
        ``None`` (default) uses :meth:`Problem.bound_children` whenever
        the problem overrides it; ``False`` forces the per-node path
        (the scalar baseline the throughput benchmark compares
        against); ``True`` forces batch calls even on problems that
        may return ``None`` (harmless — each ``None`` falls back).
    bound_provider:
        Optional zero-arg callable returning an advisory global upper
        bound (e.g. a shared-memory incumbent).  Polled every
        ``bound_poll_nodes`` processed nodes *inside* :meth:`step`, so
        a bound improvement found elsewhere tightens pruning mid-slice
        instead of waiting for the next coordination boundary (sharing
        rule 3, §4.4, without the round-trip).  The provider carries a
        cost only — adopting it never installs a solution.
    bound_poll_nodes:
        How many nodes to explore between provider polls (default 256;
        ignored without a provider).
    kernel_backend:
        Pool bound-kernel backend (:mod:`repro.core.kernels`).
        ``None`` (auto, the default) pools with the ``numpy`` backend
        whenever the problem registered pooled kernels; ``"off"``
        disables pooling (the plain PR 2 batched path); ``"numpy"`` /
        ``"numba"`` / ``"cupy"`` select a backend explicitly (optional
        backends degrade to numpy with a one-time warning when their
        dependency is missing).  Ignored when ``batched_bounds=False``
        — the scalar path is the oracle and stays pure.
    pool_size:
        Maximum number of frontier nodes bounded per pool call
        (default 64).  On the DFS frontier, pooling only *reorders
        when bound arithmetic runs* — never which nodes are popped,
        pruned or counted — so any value >= 1 yields identical
        results and stats.  On the wave frontier it is also the wave
        width: how many decomposable parents one wave accumulates.
    pool_scan_budget:
        How many stack entries one DFS pool refill may inspect while
        gathering same-depth candidates (see :meth:`_pool_fill`).
        ``None`` (default) uses ``max(4 * pool_size, 64)`` — enough to
        skip past a few interleaved depths without turning every
        refill into an O(stack) scan.  Raising it widens DFS pools on
        deep, interleaved frontiers at O(budget) scan cost per refill;
        the wave frontier does not scan at all (the wave itself is the
        pool), so this knob is DFS-only.
    frontier:
        ``"dfs"`` (default) explores strictly smallest-number-first —
        the paper's order, byte-identical stats across every backend.
        ``"wave"`` pops whole same-depth runs (up to ``pool_size``
        decomposable parents per wave) so pool kernels see wide pools
        even where DFS would feed them one or two entries.  The wave
        order still takes the smallest-numbered entries first, so the
        optimum, the proof of optimality and the improvement sequence
        match the DFS oracle exactly; the *explored-node counters* may
        differ (pruning tests happen at different moments against the
        then-current incumbent) and are reported honestly.
    frontier_width:
        Wave-mode memory bound: once the stack holds more than this
        many entries, exploration spills to single-entry DFS pops
        (draining the smallest subtrees first) until the frontier
        shrinks back under the cap, then waves resume.  Spills are
        counted in :attr:`frontier_spills`.  Ignored on the DFS
        frontier, whose stack is O(depth x branching) by construction.
    """

    def __init__(
        self,
        problem: Problem,
        interval: Optional[Interval] = None,
        *,
        incumbent: Optional[Incumbent] = None,
        on_improvement: Optional[ImprovementCallback] = None,
        batched_bounds: Optional[bool] = None,
        bound_provider: Optional[Callable[[], float]] = None,
        bound_poll_nodes: int = 256,
        kernel_backend: Optional[str] = None,
        pool_size: int = 64,
        pool_scan_budget: Optional[int] = None,
        frontier: str = "dfs",
        frontier_width: int = 32768,
    ):
        self.problem = problem
        if batched_bounds is None:
            batched_bounds = (
                type(problem).bound_children is not Problem.bound_children
            )
        self._batched_bounds = bool(batched_bounds)
        if pool_size < 1:
            raise EngineError("pool_size must be >= 1")
        self.pool_size = pool_size
        # How many stack entries one refill may inspect: bounded so a
        # deep frontier does not turn every pool fill into an O(stack)
        # scan when few candidates qualify.
        if pool_scan_budget is not None and pool_scan_budget < 1:
            raise EngineError("pool_scan_budget must be >= 1 (or None)")
        self._pool_scan = (
            pool_scan_budget
            if pool_scan_budget is not None
            else max(4 * pool_size, 64)
        )
        if frontier not in FRONTIER_CHOICES:
            raise EngineError(
                f"unknown frontier {frontier!r} "
                f"(expected one of {', '.join(FRONTIER_CHOICES)})"
            )
        self.frontier = frontier
        if frontier_width < 1:
            raise EngineError("frontier_width must be >= 1")
        self.frontier_width = frontier_width
        #: Wave-mode spill events: waves deferred to DFS pops because
        #: the stack exceeded ``frontier_width``.
        self.frontier_spills: int = 0
        #: Pool-evaluator call histogram: occupancy -> number of calls
        #: that bounded that many parents at once (every backend call
        #: is recorded, on both frontiers).
        self.pool_occupancy: Dict[int, int] = {}
        self._pool_evaluator: Optional[PoolEvaluator] = (
            pool_evaluator_for(problem, kernel_backend)
            if self._batched_bounds
            else None
        )
        self.shape: TreeShape = problem.tree_shape()
        self._weights = self.shape.weights()
        full = Interval(0, self.shape.total_leaves)
        interval = full if interval is None else interval.intersect(full)
        self._original = interval
        self._end = max(interval.end, interval.begin)
        self.incumbent = incumbent.copy() if incumbent is not None else Incumbent()
        self.on_improvement = on_improvement
        self.bound_provider = bound_provider
        if bound_poll_nodes < 1:
            raise EngineError("bound_poll_nodes must be >= 1")
        self.bound_poll_nodes = bound_poll_nodes
        self.stats = ExplorationStats()
        # Stack ordered by DECREASING node number so list.pop() yields
        # the leftmost (smallest-numbered) frontier node — DFS order.
        self._stack: List[_Entry] = []
        if not interval.is_empty():
            self._init_stack(interval)

    # ------------------------------------------------------------------
    # initialisation: unfold the interval, materialise states
    # ------------------------------------------------------------------
    def _init_stack(self, interval: Interval) -> None:
        active = unfold(self.shape, interval)
        # Consecutive frontier nodes share long rank-path prefixes, so a
        # prefix -> state cache keeps materialisation at O(P) branchings.
        prefix_states = {(): self.problem.root_state()}

        def state_for(ranks: Tuple[int, ...]) -> Any:
            if ranks in prefix_states:
                return prefix_states[ranks]
            parent = state_for(ranks[:-1])
            children = self._branch_checked(parent, len(ranks) - 1)
            state = children[ranks[-1]]
            prefix_states[ranks] = state
            return state

        for node in reversed(list(active)):
            self._stack.append(
                _Entry(node.ranks, state_for(node.ranks), node.number)
            )

    def _branch_checked(self, state: Any, depth: int) -> Tuple[Any, ...]:
        children = tuple(self.problem.branch(state, depth))
        expected = self.shape.num_children(depth)
        if len(children) != expected:
            raise ProblemError(
                f"{self.problem.name()}.branch returned {len(children)} "
                f"children at depth {depth}, shape expects {expected}"
            )
        return children

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    def is_finished(self) -> bool:
        return not self._stack

    @property
    def end(self) -> int:
        """Current right bound of the owned interval (may shrink)."""
        return self._end

    def remaining_interval(self) -> Interval:
        """Fold of the live frontier: what is left to explore.

        This is exactly what a worker reports to the coordinator during
        an interval update (§4.1).  Empty once exploration is done.
        """
        if not self._stack:
            return Interval(self._end, self._end)
        return Interval(self._stack[-1].number, self._end)

    def active_list(self) -> ActiveList:
        """The frontier as an :class:`ActiveList` (increasing order).

        Note: after :meth:`restrict_end` the last node's range may
        extend past :attr:`end`; exploration clips lazily, so the list
        covers *at least* the remaining interval.

        A wave frontier is not a contiguous eq. 9 chain (pruned runs
        leave gaps between surviving subtrees), so in wave mode this
        returns the canonical *covering* list instead: the unfold of
        :meth:`remaining_interval` — exactly the frontier a resume
        would reconstruct from the fold.
        """
        if self.frontier == "wave":
            return unfold(self.shape, self.remaining_interval())
        nodes = [
            ActiveNode(self.shape, entry.ranks)
            for entry in reversed(self._stack)
            if entry.number < self._end
        ]
        return ActiveList(self.shape, nodes)

    # ------------------------------------------------------------------
    # coordination hooks (load balancing & solution sharing)
    # ------------------------------------------------------------------
    def restrict_end(self, new_end: int) -> None:
        """Give up the tail ``[new_end, end)`` — stolen by load balancing.

        Growing the interval is not part of the protocol and raises.
        """
        if new_end > self._end:
            raise EngineError(
                f"cannot extend interval end from {self._end} to {new_end}"
            )
        self._end = new_end
        # Entries are ordered by decreasing number: drop the out-of-range
        # prefix eagerly (index 0 side holds the largest numbers).
        cut = 0
        while cut < len(self._stack) and self._stack[cut].number >= new_end:
            cut += 1
        if cut:
            del self._stack[:cut]

    def apply_interval(self, interval: Interval) -> None:
        """Reconcile with a coordinator-side copy (intersection, eq. 14).

        The coordinator can only have *shrunk* the work (raised begin is
        impossible — only this process advances begin — so in practice
        this lowers ``end``).  An empty intersection means all remaining
        work was reassigned: the frontier is dropped.
        """
        merged = self.remaining_interval().intersect(interval)
        if merged.is_empty():
            self._stack.clear()
            self._end = merged.end
            return
        self.restrict_end(merged.end)

    def set_upper_bound(self, cost: float, solution: Any = None) -> bool:
        """Adopt a better global bound (sharing rule 3, §4.4)."""
        if cost < self.incumbent.cost:
            self.incumbent.cost = cost
            self.incumbent.solution = solution
            return True
        return False

    # ------------------------------------------------------------------
    # exploration
    # ------------------------------------------------------------------
    def step(self, max_nodes: float = math.inf) -> StepReport:
        """Explore up to ``max_nodes`` nodes; return what happened.

        One "node" is one frontier entry taken off the stack, matching
        the paper's explored-node accounting (pruned, decomposed and
        leaf nodes all count).  On the batched path, children pruned at
        decomposition time (they never reach the stack) also count —
        they are the same nodes the per-node path would pop and prune —
        so a step may overshoot ``max_nodes`` by at most one family of
        siblings (one wave plus its children in wave mode).
        """
        if self.frontier == "wave":
            return self._step_wave(max_nodes)
        problem = self.problem
        stack = self._stack
        leaf_depth = self.shape.leaf_depth
        weights = self._weights
        stats = self.stats
        batched = self._batched_bounds
        pool_evaluator = self._pool_evaluator
        processed = 0
        improved = False
        provider = self.bound_provider
        poll = self.bound_poll_nodes if provider is not None else 0
        countdown = poll

        while stack and processed < max_nodes:
            if poll:
                countdown -= 1
                if countdown <= 0:
                    countdown = poll
                    shared = provider()
                    if shared < self.incumbent.cost:
                        self.incumbent.cost = shared
                        self.incumbent.solution = None
            entry = stack.pop()
            if entry.number >= self._end:
                # Stack is sorted by decreasing number: everything still
                # on it is also out of range.
                stats.nodes_skipped_out_of_range += len(stack) + 1
                stack.clear()
                break
            processed += 1
            stats.nodes_explored += 1
            depth = len(entry.ranks)

            if depth == leaf_depth:
                stats.leaves_evaluated += 1
                cost = problem.leaf_cost(entry.state)
                if cost < self.incumbent.cost:
                    self.incumbent.cost = cost
                    self.incumbent.solution = problem.leaf_solution(entry.state)
                    stats.improvements += 1
                    improved = True
                    if self.on_improvement is not None:
                        self.on_improvement(
                            self.incumbent.cost, self.incumbent.solution
                        )
                continue

            # A bound cached by a batched decomposition is the exact
            # value lower_bound would return; only the comparison with
            # the (possibly since-improved) incumbent happens now.
            stats.bound_evaluations += 1
            bound = entry.bound
            if bound is None:
                bound = problem.lower_bound(entry.state, depth)
            if bound >= self.incumbent.cost:
                stats.nodes_pruned += 1
                continue

            stats.nodes_decomposed += 1
            child_depth = depth + 1
            child_bounds: Optional[List[float]] = entry.child_bounds
            if (
                child_bounds is None
                and pool_evaluator is not None
                and child_depth < leaf_depth
            ):
                child_bounds = self._pool_fill(pool_evaluator, entry, depth)
            if child_bounds is None and batched and child_depth < leaf_depth:
                raw_bounds = problem.bound_children(entry.state, depth)
                if raw_bounds is not None:
                    if len(raw_bounds) != self.shape.num_children(depth):
                        raise ProblemError(
                            f"{problem.name()}.bound_children returned "
                            f"{len(raw_bounds)} bounds at depth {depth}, "
                            f"shape expects {self.shape.num_children(depth)}"
                        )
                    # One bulk conversion: comparing / storing plain
                    # Python scalars is cheaper per child than ndarray
                    # scalar indexing.
                    tolist = getattr(raw_bounds, "tolist", None)
                    child_bounds = (
                        tolist() if tolist is not None else list(raw_bounds)
                    )
            children = self._branch_checked(entry.state, depth)
            child_weight = weights[child_depth]
            if child_bounds is None:
                # Per-node path: push everything in range; bounds are
                # evaluated lazily when the children are popped.
                for rank in range(len(children) - 1, -1, -1):
                    child_number = entry.number + rank * child_weight
                    if child_number >= self._end:
                        stats.nodes_skipped_out_of_range += 1
                        continue
                    stack.append(
                        _Entry(
                            entry.ranks + (rank,), children[rank], child_number
                        )
                    )
                continue
            # Batched path: prune before pushing.  The incumbent cannot
            # improve between here and the moment the per-node path
            # would pop a child that is *already* prunable now (bounds
            # do not depend on the incumbent and the incumbent never
            # worsens), so accounting an early-pruned child as
            # explored+bounded+pruned matches the per-node totals
            # exactly.  Survivors carry their bound onto the stack.
            incumbent_cost = self.incumbent.cost
            for rank in range(len(children) - 1, -1, -1):
                child_number = entry.number + rank * child_weight
                if child_number >= self._end:
                    stats.nodes_skipped_out_of_range += 1
                    continue
                child_bound = child_bounds[rank]
                if child_bound >= incumbent_cost:
                    processed += 1
                    stats.nodes_explored += 1
                    stats.bound_evaluations += 1
                    stats.nodes_pruned += 1
                    continue
                stack.append(
                    _Entry(
                        entry.ranks + (rank,),
                        children[rank],
                        child_number,
                        child_bound,
                    )
                )

        return StepReport(processed, finished=not stack, improved=improved)

    def _pool_fill(
        self, evaluator: PoolEvaluator, entry: _Entry, depth: int
    ) -> Optional[List[float]]:
        """Bound-ahead refill: child bounds for ``entry`` plus up to
        ``pool_size - 1`` more same-depth frontier entries, one call.

        Only *bounding* runs ahead of DFS order here — bounds are pure
        functions of the state, independent of the incumbent — so the
        speculation cannot change which nodes are popped, pruned,
        decomposed or counted; it only moves the arithmetic of nodes
        the DFS would bound anyway into one amortised backend call.
        Candidates are taken from the top of the stack (the DFS-soonest
        entries), skipping entries that already carry child bounds,
        sit at another depth, fell out of the owned interval, or whose
        own cached bound already reaches the incumbent — those are
        certain to be pruned at pop time, so their children are never
        needed (wasted speculation, not a semantic hazard).
        """
        group = [entry]
        if self.pool_size > 1:
            cost = self.incumbent.cost
            end = self._end
            budget = self._pool_scan
            for cand in reversed(self._stack):
                if len(group) >= self.pool_size or budget <= 0:
                    break
                budget -= 1
                if (
                    cand.child_bounds is not None
                    or len(cand.ranks) != depth
                    or cand.number >= end
                    or (cand.bound is not None and cand.bound >= cost)
                ):
                    continue
                group.append(cand)
        self._evaluate_pool(evaluator, group, depth)
        return entry.child_bounds

    def _evaluate_pool(
        self, evaluator: PoolEvaluator, group: List[_Entry], depth: int
    ) -> None:
        """One backend call: bound the children of every entry in
        ``group`` (all at ``depth``), cache the rows on the entries,
        and record the call's occupancy in :attr:`pool_occupancy`.
        Declined rows (``None``) leave ``child_bounds`` unset, so the
        caller's per-parent fallbacks still apply.
        """
        results = evaluator([cand.state for cand in group], depth)
        occupancy = len(group)
        self.pool_occupancy[occupancy] = (
            self.pool_occupancy.get(occupancy, 0) + 1
        )
        if results is None:
            return
        expected = self.shape.num_children(depth)
        for cand, row in zip(group, results):
            if row is None:
                continue
            if len(row) != expected:
                raise ProblemError(
                    f"{self.problem.name()} pool kernel returned "
                    f"{len(row)} bounds at depth {depth}, "
                    f"shape expects {expected}"
                )
            tolist = getattr(row, "tolist", None)
            cand.child_bounds = tolist() if tolist is not None else list(row)

    # ------------------------------------------------------------------
    # wave frontier
    # ------------------------------------------------------------------
    def _step_wave(self, max_nodes: float) -> StepReport:
        """Wave-mode :meth:`step`: same-depth runs instead of single pops.

        Each iteration pops the top run of same-depth entries — prune-
        checking as it goes — until it holds ``pool_size`` decomposable
        parents, then bounds *all* their children in one pool-evaluator
        call and pushes the surviving children (early-pruned exactly
        like the batched DFS path).  Because the stack is sorted by
        decreasing number and waves always consume its top, the frontier
        stays number-sorted, leaves are still evaluated left to right,
        and :meth:`remaining_interval` stays a valid fold: every
        unexplored leaf is numbered at or above the top entry.  Leaves
        and over-``frontier_width`` spills are processed by single DFS
        pops (:meth:`_process_single`).
        """
        problem = self.problem
        stack = self._stack
        leaf_depth = self.shape.leaf_depth
        weights = self._weights
        stats = self.stats
        batched = self._batched_bounds
        pool_evaluator = self._pool_evaluator
        pool_size = self.pool_size
        width = self.frontier_width
        processed = 0
        improved = False
        provider = self.bound_provider
        poll = self.bound_poll_nodes if provider is not None else 0
        countdown = poll

        while stack and processed < max_nodes:
            if poll and countdown <= 0:
                # Wave-sized decrements: poll roughly every
                # ``bound_poll_nodes`` processed nodes, like DFS.
                countdown = poll
                shared = provider()
                if shared < self.incumbent.cost:
                    self.incumbent.cost = shared
                    self.incumbent.solution = None
            if stack[-1].number >= self._end:
                # Sorted stack: the smallest-numbered entry is already
                # out of range, so everything else is too.
                stats.nodes_skipped_out_of_range += len(stack)
                stack.clear()
                break
            depth = len(stack[-1].ranks)
            if depth == leaf_depth or len(stack) > width:
                # Leaves gain nothing from grouping (leaf_cost is
                # scalar); an over-width stack must shrink before the
                # next wave may multiply it — single DFS pops drain
                # the smallest subtrees first either way.
                if depth != leaf_depth:
                    self.frontier_spills += 1
                count, leaf_improved = self._process_single(stack.pop())
                processed += count
                countdown -= count
                improved = improved or leaf_improved
                continue

            # Pop the wave: same-depth entries off the top until
            # pool_size decomposable parents survive the prune test
            # (no leaves are evaluated here, so the incumbent cannot
            # move under the wave).
            survivors: List[_Entry] = []
            incumbent_cost = self.incumbent.cost
            while stack and len(survivors) < pool_size:
                cand = stack[-1]
                if len(cand.ranks) != depth:
                    break
                if cand.number >= self._end:
                    stats.nodes_skipped_out_of_range += len(stack)
                    stack.clear()
                    break
                stack.pop()
                processed += 1
                countdown -= 1
                stats.nodes_explored += 1
                stats.bound_evaluations += 1
                bound = cand.bound
                if bound is None:
                    bound = problem.lower_bound(cand.state, depth)
                if bound >= incumbent_cost:
                    stats.nodes_pruned += 1
                    continue
                stats.nodes_decomposed += 1
                survivors.append(cand)
            if not survivors:
                continue

            child_depth = depth + 1
            if pool_evaluator is not None and child_depth < leaf_depth:
                group = [e for e in survivors if e.child_bounds is None]
                if group:
                    self._evaluate_pool(pool_evaluator, group, depth)

            # Push children, highest-numbered parent first, so the
            # stack stays sorted by decreasing number (subtree ranges
            # are disjoint and ordered).
            child_weight = weights[child_depth]
            for entry in reversed(survivors):
                child_bounds = entry.child_bounds
                if (
                    child_bounds is None
                    and batched
                    and child_depth < leaf_depth
                ):
                    raw_bounds = problem.bound_children(entry.state, depth)
                    if raw_bounds is not None:
                        if len(raw_bounds) != self.shape.num_children(depth):
                            raise ProblemError(
                                f"{problem.name()}.bound_children returned "
                                f"{len(raw_bounds)} bounds at depth {depth},"
                                f" shape expects "
                                f"{self.shape.num_children(depth)}"
                            )
                        tolist = getattr(raw_bounds, "tolist", None)
                        child_bounds = (
                            tolist()
                            if tolist is not None
                            else list(raw_bounds)
                        )
                children = self._branch_checked(entry.state, depth)
                if child_bounds is None:
                    for rank in range(len(children) - 1, -1, -1):
                        child_number = entry.number + rank * child_weight
                        if child_number >= self._end:
                            stats.nodes_skipped_out_of_range += 1
                            continue
                        stack.append(
                            _Entry(
                                entry.ranks + (rank,),
                                children[rank],
                                child_number,
                            )
                        )
                    continue
                for rank in range(len(children) - 1, -1, -1):
                    child_number = entry.number + rank * child_weight
                    if child_number >= self._end:
                        stats.nodes_skipped_out_of_range += 1
                        continue
                    child_bound = child_bounds[rank]
                    if child_bound >= incumbent_cost:
                        processed += 1
                        countdown -= 1
                        stats.nodes_explored += 1
                        stats.bound_evaluations += 1
                        stats.nodes_pruned += 1
                        continue
                    stack.append(
                        _Entry(
                            entry.ranks + (rank,),
                            children[rank],
                            child_number,
                            child_bound,
                        )
                    )

        return StepReport(processed, finished=not stack, improved=improved)

    def _process_single(self, entry: _Entry) -> Tuple[int, bool]:
        """Explore one already-popped, in-range entry the DFS way.

        The wave loop's fallback for leaves and width spills — same
        accounting as the main DFS loop, including the decomposition-
        time pool refill and early pruning.  Returns ``(nodes counted,
        incumbent improved)``.
        """
        problem = self.problem
        stats = self.stats
        stats.nodes_explored += 1
        depth = len(entry.ranks)
        leaf_depth = self.shape.leaf_depth

        if depth == leaf_depth:
            stats.leaves_evaluated += 1
            cost = problem.leaf_cost(entry.state)
            if cost < self.incumbent.cost:
                self.incumbent.cost = cost
                self.incumbent.solution = problem.leaf_solution(entry.state)
                stats.improvements += 1
                if self.on_improvement is not None:
                    self.on_improvement(
                        self.incumbent.cost, self.incumbent.solution
                    )
                return 1, True
            return 1, False

        stats.bound_evaluations += 1
        bound = entry.bound
        if bound is None:
            bound = problem.lower_bound(entry.state, depth)
        if bound >= self.incumbent.cost:
            stats.nodes_pruned += 1
            return 1, False

        stats.nodes_decomposed += 1
        child_depth = depth + 1
        child_bounds: Optional[List[float]] = entry.child_bounds
        if (
            child_bounds is None
            and self._pool_evaluator is not None
            and child_depth < leaf_depth
        ):
            child_bounds = self._pool_fill(self._pool_evaluator, entry, depth)
        if (
            child_bounds is None
            and self._batched_bounds
            and child_depth < leaf_depth
        ):
            raw_bounds = problem.bound_children(entry.state, depth)
            if raw_bounds is not None:
                if len(raw_bounds) != self.shape.num_children(depth):
                    raise ProblemError(
                        f"{problem.name()}.bound_children returned "
                        f"{len(raw_bounds)} bounds at depth {depth}, "
                        f"shape expects {self.shape.num_children(depth)}"
                    )
                tolist = getattr(raw_bounds, "tolist", None)
                child_bounds = (
                    tolist() if tolist is not None else list(raw_bounds)
                )
        children = self._branch_checked(entry.state, depth)
        child_weight = self._weights[child_depth]
        stack = self._stack
        processed = 1
        if child_bounds is None:
            for rank in range(len(children) - 1, -1, -1):
                child_number = entry.number + rank * child_weight
                if child_number >= self._end:
                    stats.nodes_skipped_out_of_range += 1
                    continue
                stack.append(
                    _Entry(entry.ranks + (rank,), children[rank], child_number)
                )
            return processed, False
        incumbent_cost = self.incumbent.cost
        for rank in range(len(children) - 1, -1, -1):
            child_number = entry.number + rank * child_weight
            if child_number >= self._end:
                stats.nodes_skipped_out_of_range += 1
                continue
            child_bound = child_bounds[rank]
            if child_bound >= incumbent_cost:
                processed += 1
                stats.nodes_explored += 1
                stats.bound_evaluations += 1
                stats.nodes_pruned += 1
                continue
            stack.append(
                _Entry(
                    entry.ranks + (rank,),
                    children[rank],
                    child_number,
                    child_bound,
                )
            )
        return processed, False

    def run(self) -> ExplorationStats:
        """Explore the whole owned interval to completion."""
        while not self.is_finished():
            self.step(math.inf)
        return self.stats


# ----------------------------------------------------------------------
# one-shot conveniences
# ----------------------------------------------------------------------
def solve(
    problem: Problem,
    *,
    interval: Optional[Interval] = None,
    initial_upper_bound: float = math.inf,
    initial_solution: Any = None,
    on_improvement: Optional[ImprovementCallback] = None,
    batched_bounds: Optional[bool] = None,
    kernel_backend: Optional[str] = None,
    pool_size: int = 64,
    pool_scan_budget: Optional[int] = None,
    frontier: str = "dfs",
    frontier_width: int = 32768,
) -> SolveResult:
    """Sequentially solve ``problem`` (over ``interval``) with proof.

    This is the paper's algorithm on a single processor: the returned
    cost is the optimum over the explored interval and ``optimal`` is
    ``True`` because the exploration ran to exhaustion.  The paper
    initialised Ta056 with the best-known cost 3681 — pass it through
    ``initial_upper_bound`` for the same effect (note: with a pure
    bound and no solution, an instance whose optimum equals the bound
    reports ``solution=None``; pass ``initial_solution`` to keep it).
    ``kernel_backend`` / ``pool_size`` / ``pool_scan_budget`` select
    the pool bound-kernel backend (see :class:`IntervalExplorer`); the
    default pools with numpy on problems that register pooled kernels.
    ``frontier="wave"`` (with its ``frontier_width`` memory cap) fills
    those pools from same-depth exploration waves instead of the DFS
    stack — same optimum and proof, wider kernel calls.

    A problem-supplied :meth:`Problem.warm_start` heuristic seeds the
    incumbent as well; the incumbent is monotonic, so whichever of the
    warm start and ``initial_upper_bound`` is better wins, and a warm
    start can only speed the proof up, never change the optimum.
    """
    incumbent = Incumbent(initial_upper_bound, initial_solution)
    warm = problem.warm_start()
    if warm is not None:
        incumbent.update(*warm)
    explorer = IntervalExplorer(
        problem,
        interval,
        incumbent=incumbent,
        on_improvement=on_improvement,
        batched_bounds=batched_bounds,
        kernel_backend=kernel_backend,
        pool_size=pool_size,
        pool_scan_budget=pool_scan_budget,
        frontier=frontier,
        frontier_width=frontier_width,
    )
    explorer.run()
    full = Interval(0, problem.total_leaves()) if interval is None else interval
    return SolveResult(
        cost=explorer.incumbent.cost,
        solution=explorer.incumbent.solution,
        stats=explorer.stats,
        interval=full,
        pool_occupancy=dict(explorer.pool_occupancy),
        frontier_spills=explorer.frontier_spills,
    )


def brute_force_minimum(problem: Problem) -> SolveResult:
    """Evaluate every leaf (no pruning) — ground truth for tests.

    Exponential; only call on tiny instances.
    """

    class _NoPruning(Problem):
        def tree_shape(self) -> TreeShape:
            return problem.tree_shape()

        def root_state(self) -> Any:
            return problem.root_state()

        def branch(self, state: Any, depth: int) -> Sequence[Any]:
            return problem.branch(state, depth)

        def lower_bound(self, state: Any, depth: int) -> float:
            return -math.inf

        def leaf_cost(self, state: Any) -> float:
            return problem.leaf_cost(state)

        def leaf_solution(self, state: Any) -> Any:
            return problem.leaf_solution(state)

    return solve(_NoPruning())


def iter_leaf_costs(problem: Problem) -> Iterator[Tuple[int, float]]:
    """Yield ``(leaf_number, cost)`` for every leaf, in number order.

    Test helper for exhaustive cross-checks of numbering and engine
    semantics on small trees.
    """
    shape = problem.tree_shape()
    weights = shape.weights()

    def walk(state: Any, depth: int, number: int) -> Iterator[Tuple[int, float]]:
        if depth == shape.leaf_depth:
            yield number, problem.leaf_cost(state)
            return
        child_weight = weights[depth + 1]
        for rank, child in enumerate(problem.branch(state, depth)):
            yield from walk(child, depth + 1, number + rank * child_weight)

    yield from walk(problem.root_state(), 0, 0)

"""Two-file checkpointing of ``INTERVALS`` and ``SOLUTION`` (§4.1).

"The coordinator manages a possible failure of the farmer by
periodically saving, in two files, the contents of INTERVALS and
SOLUTION."  This module is that persistence layer: JSON payloads
written atomically (temp file + rename) so a crash mid-write never
corrupts the previous checkpoint.

Node numbers can exceed 2**53 (``50!`` for Ta056), so intervals are
serialised as decimal strings — Python's ``json`` would emit big ints
fine, but many readers would round-trip them through doubles.

Between full snapshots the store keeps an append-only *journal* of
reconciliation events (explored ranges, incumbent pushes).  Each record
is one line, ``<crc32-hex> <canonical-json>``, stamped with the
generation of the snapshot it follows.  Replay truncates a torn tail
(a crash mid-append) at the last valid record and ignores records
stamped for a different generation (a crash between the snapshot write
and the journal rotation).  The journal shrinks the recovery window
from ``checkpoint_period`` to the last reconciled update.
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, IO, List, Optional, Tuple

from repro.core.interval import Interval
from repro.core.interval_set import IntervalSet
from repro.core.stats import Incumbent
from repro.exceptions import CheckpointError

__all__ = [
    "CheckpointJournal",
    "CheckpointStore",
    "JournalRecord",
    "MultiJobStore",
    "RecoveredState",
]

_FORMAT_VERSION = 1


def _payload_crc(payload: Any) -> str:
    """CRC32 (hex) over the canonical JSON form, minus any crc field."""
    if isinstance(payload, dict):
        payload = {k: v for k, v in payload.items() if k != "crc"}
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return format(zlib.crc32(body.encode("utf-8")), "08x")


def _atomic_write_json(path: Path, payload: Any) -> None:
    if isinstance(payload, dict):
        payload = dict(payload, crc=_payload_crc(payload))
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=path.name + ".")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _read_json(path: Path) -> Any:
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except FileNotFoundError:
        raise
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    # Files written before the checksum field existed carry no crc and
    # still load; a present-but-wrong crc means silent corruption.
    if isinstance(payload, dict) and "crc" in payload:
        if payload["crc"] != _payload_crc(payload):
            raise CheckpointError(
                f"checksum mismatch in {path}: the file was modified "
                "outside the atomic-write path"
            )
    return payload


@dataclass(frozen=True)
class JournalRecord:
    """One reconciliation event appended between snapshots.

    ``kind`` is ``"explored"`` (a definitely-explored range subtracted
    from INTERVALS on replay) or ``"push"`` (an incumbent improvement).
    ``generation`` names the snapshot pair the record follows; replay
    ignores records stamped for any other generation.
    """

    generation: int
    kind: str
    interval: Optional[Tuple[int, int]] = None
    cost: Optional[float] = None
    solution: Optional[Any] = None

    def to_json(self) -> str:
        doc: Dict[str, Any] = {"gen": self.generation, "kind": self.kind}
        if self.interval is not None:
            doc["interval"] = [str(self.interval[0]), str(self.interval[1])]
        if self.cost is not None:
            doc["cost"] = self.cost
        if self.solution is not None:
            doc["solution"] = _jsonable_solution(self.solution)
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "JournalRecord":
        doc = json.loads(text)
        if not isinstance(doc, dict):
            raise ValueError(f"journal record is not an object: {text!r}")
        generation = doc["gen"]
        kind = doc["kind"]
        if not isinstance(generation, int) or kind not in ("explored", "push"):
            raise ValueError(f"malformed journal record: {text!r}")
        interval: Optional[Tuple[int, int]] = None
        if "interval" in doc:
            begin, end = doc["interval"]
            interval = (int(begin), int(end))
        solution = doc.get("solution")
        if isinstance(solution, list):
            solution = tuple(solution)
        return cls(generation, kind, interval, doc.get("cost"), solution)


class CheckpointJournal:
    """Append-only, CRC-framed record log between full snapshots.

    One record per line: ``<crc32-hex> <canonical-json>\\n``.  Appends
    are flushed and fsynced individually so a SIGKILL can lose at most
    the record being written — which replay then truncates away.
    """

    def __init__(self, path: Path):
        self.path = Path(path)
        self._fh: Optional[IO[bytes]] = None

    def append(self, record: JournalRecord) -> None:
        body = record.to_json().encode("utf-8")
        line = format(zlib.crc32(body), "08x").encode("ascii") + b" " + body + b"\n"
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "ab")
        self._fh.write(line)
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def rotate(self) -> None:
        """Empty the journal: a fresh snapshot has subsumed its records."""
        self.close()
        if self.path.exists():
            # The truncation must be durable before the caller trusts
            # the snapshot alone: a power cut that resurrects the old
            # journal bytes would replay reconciliations against the
            # *new* snapshot's interval state.
            with open(self.path, "wb") as fh:
                fh.flush()
                os.fsync(fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def replay(self, generation: int) -> List[JournalRecord]:
        """Parse records stamped ``generation``; truncate any torn tail.

        Scans the valid prefix of the file: a line that is incomplete,
        fails its CRC, or does not parse marks the torn tail — the file
        is truncated there so later appends cannot interleave with
        garbage.  Valid records stamped for another generation are
        skipped (they predate the snapshot being recovered) but do not
        stop the scan.
        """
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return []
        records: List[JournalRecord] = []
        pos = 0
        valid = 0
        while pos < len(raw):
            newline = raw.find(b"\n", pos)
            if newline == -1:
                break  # incomplete final line: torn append
            line = raw[pos:newline]
            space = line.find(b" ")
            if space != 8:
                break
            body = line[9:]
            if format(zlib.crc32(body), "08x").encode("ascii") != line[:8]:
                break
            try:
                record = JournalRecord.from_json(body.decode("utf-8"))
            except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                break
            pos = newline + 1
            valid = pos
            if record.generation == generation:
                records.append(record)
        if valid < len(raw):
            self.close()
            # Durable truncation: if the torn tail came back after a
            # crash, the next append would interleave live records
            # with garbage and the CRC scan would stop at the seam.
            with open(self.path, "r+b") as fh:
                fh.truncate(valid)
                fh.flush()
                os.fsync(fh.fileno())
        return records


@dataclass
class RecoveredState:
    """What :meth:`CheckpointStore.load_state` reconstructed."""

    intervals: Optional[IntervalSet]
    incumbent: Optional[Incumbent]
    generation: int
    replayed_records: int = 0
    replayed_leaves: int = 0


@dataclass
class CheckpointStore:
    """Reads/writes the coordinator's two checkpoint files.

    ``directory`` holds ``intervals.json`` and ``solution.json``.

    Paired saves through :meth:`save` stamp both files with a shared,
    monotonically increasing *generation* counter; :meth:`load`
    refuses a pair whose generations disagree (a crash landed between
    the two writes) or where only one file exists, raising
    :class:`~repro.exceptions.CheckpointError` instead of silently
    recovering half a snapshot.
    """

    directory: Path

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)
        self._generation: Optional[int] = None
        self.journal = CheckpointJournal(self.journal_path)

    @property
    def intervals_path(self) -> Path:
        return self.directory / "intervals.json"

    @property
    def solution_path(self) -> Path:
        return self.directory / "solution.json"

    @property
    def journal_path(self) -> Path:
        return self.directory / "journal.log"

    @property
    def epoch_path(self) -> Path:
        return self.directory / "epoch.json"

    # ------------------------------------------------------------------
    # INTERVALS
    # ------------------------------------------------------------------
    def save_intervals(
        self, intervals: IntervalSet, generation: Optional[int] = None
    ) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "generation": generation,
            "intervals": [
                [str(b), str(e)] for b, e in intervals.to_payload()
            ],
        }
        _atomic_write_json(self.intervals_path, payload)

    def load_intervals(
        self, duplication_threshold: int = 0
    ) -> Optional[IntervalSet]:
        """Restore INTERVALS; ``None`` when no checkpoint exists yet."""
        try:
            payload = _read_json(self.intervals_path)
        except FileNotFoundError:
            return None
        self._check_version(payload, self.intervals_path)
        try:
            pairs: List[Tuple[int, int]] = [
                (int(b), int(e)) for b, e in payload["intervals"]
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed intervals checkpoint {self.intervals_path}: {exc}"
            ) from exc
        return IntervalSet.from_payload(pairs, duplication_threshold)

    # ------------------------------------------------------------------
    # SOLUTION
    # ------------------------------------------------------------------
    def save_solution(
        self, incumbent: Incumbent, generation: Optional[int] = None
    ) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "generation": generation,
            "cost": None if incumbent.cost == float("inf") else incumbent.cost,
            "solution": _jsonable_solution(incumbent.solution),
        }
        _atomic_write_json(self.solution_path, payload)

    def load_solution(self) -> Optional[Incumbent]:
        """Restore SOLUTION; ``None`` when no checkpoint exists yet."""
        try:
            payload = _read_json(self.solution_path)
        except FileNotFoundError:
            return None
        self._check_version(payload, self.solution_path)
        cost = payload.get("cost")
        solution = payload.get("solution")
        if solution is not None and isinstance(solution, list):
            solution = tuple(solution)
        return Incumbent(
            float("inf") if cost is None else cost,
            solution,
        )

    # ------------------------------------------------------------------
    # combined convenience
    # ------------------------------------------------------------------
    def save(self, intervals: IntervalSet, incumbent: Incumbent) -> None:
        generation = self._next_generation()
        self.save_intervals(intervals, generation=generation)
        self.save_solution(incumbent, generation=generation)
        # The snapshot subsumes every journaled event; a crash landing
        # before this rotation leaves records stamped with the previous
        # generation, which replay filters out.
        self.journal.rotate()

    # ------------------------------------------------------------------
    # journal (reconciliation events between snapshots)
    # ------------------------------------------------------------------
    def journal_explored(self, explored: Interval) -> None:
        """Record a definitely-explored range (an owned-path update)."""
        self.journal.append(
            JournalRecord(
                self._committed_generation(), "explored", explored.as_tuple()
            )
        )

    def journal_push(self, cost: float, solution: Any) -> None:
        """Record an incumbent improvement (a Push the coordinator kept)."""
        self.journal.append(
            JournalRecord(
                self._committed_generation(), "push", cost=cost,
                solution=solution,
            )
        )

    def load_state(
        self,
        root_interval: Optional[Interval] = None,
        duplication_threshold: int = 0,
        replay_journal: bool = True,
    ) -> RecoveredState:
        """Restore the snapshot pair, then replay the journal over it.

        When no snapshot exists yet and ``root_interval`` is given, the
        journal replays over a fresh root set — a crash before the
        first snapshot still recovers every reconciled update.
        Explored records subtract their range from INTERVALS (position
        subtraction is order-insensitive and idempotent, so replay
        after a torn tail is always safe); push records re-apply
        through the monotonic incumbent update.
        """
        intervals, incumbent = self.load(duplication_threshold)
        generation = self._read_generation(self.intervals_path) or 0
        base = intervals
        if base is None and root_interval is not None:
            base = IntervalSet.initial(root_interval, duplication_threshold)
        records = self.journal.replay(generation) if replay_journal else []
        leaves = 0
        for record in records:
            if record.kind == "explored" and base is not None:
                assert record.interval is not None
                leaves += base.subtract(Interval.from_tuple(record.interval))
            elif record.kind == "push" and record.cost is not None:
                if incumbent is None:
                    incumbent = Incumbent()
                incumbent.update(record.cost, record.solution)
        return RecoveredState(
            base, incumbent, generation,
            replayed_records=len(records), replayed_leaves=leaves,
        )

    # ------------------------------------------------------------------
    # server epoch (restart counter for the Welcome handshake)
    # ------------------------------------------------------------------
    def read_epoch(self) -> int:
        try:
            payload = _read_json(self.epoch_path)
        except (FileNotFoundError, CheckpointError):
            # Crash-only: a damaged epoch file must not block a restart.
            # Epoch detection compares for *change*, not order, so
            # restarting the count still flags stale workers.
            return 0
        if isinstance(payload, dict) and isinstance(payload.get("epoch"), int):
            return payload["epoch"]
        return 0

    def bump_epoch(self) -> int:
        """Advance and persist the server epoch; returns the new value."""
        epoch = self.read_epoch() + 1
        _atomic_write_json(
            self.epoch_path, {"version": _FORMAT_VERSION, "epoch": epoch}
        )
        return epoch

    def load(
        self, duplication_threshold: int = 0
    ) -> Tuple[Optional[IntervalSet], Optional[Incumbent]]:
        """Restore the pair; ``(None, None)`` for a fresh directory.

        Raises :class:`CheckpointError` when the snapshot is partial —
        exactly one of the two files exists, or both carry generation
        stamps that disagree.  Recovering such a pair would silently
        mix an old SOLUTION with a new INTERVALS (or vice versa).
        """
        intervals = self.load_intervals(duplication_threshold)
        solution_exists = self.solution_path.exists()
        if intervals is None and solution_exists:
            raise CheckpointError(
                f"partial checkpoint: {self.solution_path} exists but "
                f"{self.intervals_path} is missing"
            )
        if intervals is not None and not solution_exists:
            raise CheckpointError(
                f"partial checkpoint: {self.intervals_path} exists but "
                f"{self.solution_path} is missing"
            )
        incumbent = self.load_solution()
        gen_i = self._read_generation(self.intervals_path)
        gen_s = self._read_generation(self.solution_path)
        if gen_i is not None and gen_s is not None and gen_i != gen_s:
            raise CheckpointError(
                f"checkpoint generation mismatch: INTERVALS at {gen_i}, "
                f"SOLUTION at {gen_s} — the pair was partially written"
            )
        return intervals, incumbent

    def _committed_generation(self) -> int:
        """Generation of the snapshot the journal currently follows."""
        if self._generation is not None:
            return self._generation
        on_disk = [
            self._read_generation(p)
            for p in (self.intervals_path, self.solution_path)
        ]
        self._generation = max((g for g in on_disk if g is not None), default=0)
        return self._generation

    def _next_generation(self) -> int:
        if self._generation is None:
            on_disk = [
                self._read_generation(p)
                for p in (self.intervals_path, self.solution_path)
            ]
            self._generation = max(
                (g for g in on_disk if g is not None), default=0
            )
        self._generation += 1
        return self._generation

    @staticmethod
    def _read_generation(path: Path) -> Optional[int]:
        try:
            payload = _read_json(path)
        except (FileNotFoundError, CheckpointError):
            return None
        if isinstance(payload, dict) and isinstance(
            payload.get("generation"), int
        ):
            return payload["generation"]
        return None

    def clear(self) -> None:
        self.journal.close()
        for path in (
            self.intervals_path,
            self.solution_path,
            self.journal_path,
            self.epoch_path,
        ):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    @staticmethod
    def _check_version(payload: Any, path: Path) -> None:
        if not isinstance(payload, dict) or payload.get("version") != _FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {path} has unsupported format: "
                f"{payload.get('version') if isinstance(payload, dict) else payload!r}"
            )


class MultiJobStore:
    """Durable layout for the multi-tenant solve service.

    One service directory fans out into per-job checkpoint stores::

        <directory>/
            epoch.json            service incarnation counter
            jobs/<job-id>/
                meta.json         spec + status + owner + priority
                intervals.json    ┐
                solution.json     │ one CheckpointStore per job
                journal.log       ┘

    Each job keeps the full crash-only machinery of
    :class:`CheckpointStore` — generation-stamped snapshot pairs plus
    the reconciliation journal — so recovering the service is just
    recovering every job.  ``meta.json`` is written atomically through
    the same path as the snapshots; status transitions are durable the
    moment :meth:`save_meta` returns.

    Job ids are opaque strings but they double as directory names, so
    the store only accepts filesystem-safe ids (hex uuids qualify).
    """

    def __init__(self, directory: Path):
        self.directory = Path(directory)
        self._stores: Dict[str, CheckpointStore] = {}

    @property
    def jobs_root(self) -> Path:
        return self.directory / "jobs"

    @property
    def epoch_path(self) -> Path:
        return self.directory / "epoch.json"

    @staticmethod
    def _check_id(job_id: str) -> str:
        if not job_id or not all(
            c.isalnum() or c in "._-" for c in job_id
        ) or job_id.startswith("."):
            raise CheckpointError(
                f"job id {job_id!r} is not filesystem-safe"
            )
        return job_id

    def job_dir(self, job_id: str) -> Path:
        return self.jobs_root / self._check_id(job_id)

    def job_store(self, job_id: str) -> CheckpointStore:
        """The per-job :class:`CheckpointStore` (cached per id)."""
        store = self._stores.get(job_id)
        if store is None:
            store = CheckpointStore(self.job_dir(job_id))
            self._stores[job_id] = store
        return store

    def job_ids(self) -> List[str]:
        """Every job with an on-disk directory, in stable (name) order."""
        try:
            entries = sorted(p.name for p in self.jobs_root.iterdir() if p.is_dir())
        except FileNotFoundError:
            return []
        return entries

    # ------------------------------------------------------------------
    # per-job metadata (spec, status, owner, priority, result)
    # ------------------------------------------------------------------
    def save_meta(self, job_id: str, meta: Dict[str, Any]) -> None:
        """Atomically persist one job's metadata document."""
        payload = dict(meta, version=_FORMAT_VERSION)
        _atomic_write_json(self.job_dir(job_id) / "meta.json", payload)

    def load_meta(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The job's metadata, or ``None`` when it was never written."""
        try:
            payload = _read_json(self.job_dir(job_id) / "meta.json")
        except FileNotFoundError:
            return None
        if not isinstance(payload, dict):
            raise CheckpointError(
                f"malformed job metadata for {job_id!r}: {payload!r}"
            )
        payload.pop("crc", None)
        payload.pop("version", None)
        return payload

    # ------------------------------------------------------------------
    # service epoch (same contract as CheckpointStore's)
    # ------------------------------------------------------------------
    def read_epoch(self) -> int:
        try:
            payload = _read_json(self.epoch_path)
        except (FileNotFoundError, CheckpointError):
            return 0
        if isinstance(payload, dict) and isinstance(payload.get("epoch"), int):
            return payload["epoch"]
        return 0

    def bump_epoch(self) -> int:
        epoch = self.read_epoch() + 1
        _atomic_write_json(
            self.epoch_path, {"version": _FORMAT_VERSION, "epoch": epoch}
        )
        return epoch

    def clear(self) -> None:
        """Remove every job directory and the epoch file."""
        for job_id in self.job_ids():
            store = self.job_store(job_id)
            store.clear()
            meta = store.directory / "meta.json"
            try:
                meta.unlink()
            except FileNotFoundError:
                pass
            try:
                store.directory.rmdir()
            except OSError:
                pass
        self._stores.clear()
        try:
            self.epoch_path.unlink()
        except FileNotFoundError:
            pass


def _jsonable_solution(solution: Any) -> Any:
    """Coerce common solution shapes (tuples of ints) into JSON types."""
    if solution is None:
        return None
    if isinstance(solution, (list, tuple)):
        return [int(x) if hasattr(x, "__int__") else x for x in solution]
    return solution

"""Two-file checkpointing of ``INTERVALS`` and ``SOLUTION`` (§4.1).

"The coordinator manages a possible failure of the farmer by
periodically saving, in two files, the contents of INTERVALS and
SOLUTION."  This module is that persistence layer: JSON payloads
written atomically (temp file + rename) so a crash mid-write never
corrupts the previous checkpoint.

Node numbers can exceed 2**53 (``50!`` for Ta056), so intervals are
serialised as decimal strings — Python's ``json`` would emit big ints
fine, but many readers would round-trip them through doubles.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, List, Optional, Tuple

from repro.core.interval import Interval
from repro.core.interval_set import IntervalSet
from repro.core.stats import Incumbent
from repro.exceptions import CheckpointError

__all__ = ["CheckpointStore"]

_FORMAT_VERSION = 1


def _atomic_write_json(path: Path, payload: Any) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=path.name + ".")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _read_json(path: Path) -> Any:
    try:
        with open(path) as fh:
            return json.load(fh)
    except FileNotFoundError:
        raise
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc


@dataclass
class CheckpointStore:
    """Reads/writes the coordinator's two checkpoint files.

    ``directory`` holds ``intervals.json`` and ``solution.json``.

    Paired saves through :meth:`save` stamp both files with a shared,
    monotonically increasing *generation* counter; :meth:`load`
    refuses a pair whose generations disagree (a crash landed between
    the two writes) or where only one file exists, raising
    :class:`~repro.exceptions.CheckpointError` instead of silently
    recovering half a snapshot.
    """

    directory: Path

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)
        self._generation: Optional[int] = None

    @property
    def intervals_path(self) -> Path:
        return self.directory / "intervals.json"

    @property
    def solution_path(self) -> Path:
        return self.directory / "solution.json"

    # ------------------------------------------------------------------
    # INTERVALS
    # ------------------------------------------------------------------
    def save_intervals(
        self, intervals: IntervalSet, generation: Optional[int] = None
    ) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "generation": generation,
            "intervals": [
                [str(b), str(e)] for b, e in intervals.to_payload()
            ],
        }
        _atomic_write_json(self.intervals_path, payload)

    def load_intervals(
        self, duplication_threshold: int = 0
    ) -> Optional[IntervalSet]:
        """Restore INTERVALS; ``None`` when no checkpoint exists yet."""
        try:
            payload = _read_json(self.intervals_path)
        except FileNotFoundError:
            return None
        self._check_version(payload, self.intervals_path)
        try:
            pairs: List[Tuple[int, int]] = [
                (int(b), int(e)) for b, e in payload["intervals"]
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed intervals checkpoint {self.intervals_path}: {exc}"
            ) from exc
        return IntervalSet.from_payload(pairs, duplication_threshold)

    # ------------------------------------------------------------------
    # SOLUTION
    # ------------------------------------------------------------------
    def save_solution(
        self, incumbent: Incumbent, generation: Optional[int] = None
    ) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "generation": generation,
            "cost": None if incumbent.cost == float("inf") else incumbent.cost,
            "solution": _jsonable_solution(incumbent.solution),
        }
        _atomic_write_json(self.solution_path, payload)

    def load_solution(self) -> Optional[Incumbent]:
        """Restore SOLUTION; ``None`` when no checkpoint exists yet."""
        try:
            payload = _read_json(self.solution_path)
        except FileNotFoundError:
            return None
        self._check_version(payload, self.solution_path)
        cost = payload.get("cost")
        solution = payload.get("solution")
        if solution is not None and isinstance(solution, list):
            solution = tuple(solution)
        return Incumbent(
            float("inf") if cost is None else cost,
            solution,
        )

    # ------------------------------------------------------------------
    # combined convenience
    # ------------------------------------------------------------------
    def save(self, intervals: IntervalSet, incumbent: Incumbent) -> None:
        generation = self._next_generation()
        self.save_intervals(intervals, generation=generation)
        self.save_solution(incumbent, generation=generation)

    def load(
        self, duplication_threshold: int = 0
    ) -> Tuple[Optional[IntervalSet], Optional[Incumbent]]:
        """Restore the pair; ``(None, None)`` for a fresh directory.

        Raises :class:`CheckpointError` when the snapshot is partial —
        exactly one of the two files exists, or both carry generation
        stamps that disagree.  Recovering such a pair would silently
        mix an old SOLUTION with a new INTERVALS (or vice versa).
        """
        intervals = self.load_intervals(duplication_threshold)
        solution_exists = self.solution_path.exists()
        if intervals is None and solution_exists:
            raise CheckpointError(
                f"partial checkpoint: {self.solution_path} exists but "
                f"{self.intervals_path} is missing"
            )
        if intervals is not None and not solution_exists:
            raise CheckpointError(
                f"partial checkpoint: {self.intervals_path} exists but "
                f"{self.solution_path} is missing"
            )
        incumbent = self.load_solution()
        gen_i = self._read_generation(self.intervals_path)
        gen_s = self._read_generation(self.solution_path)
        if gen_i is not None and gen_s is not None and gen_i != gen_s:
            raise CheckpointError(
                f"checkpoint generation mismatch: INTERVALS at {gen_i}, "
                f"SOLUTION at {gen_s} — the pair was partially written"
            )
        return intervals, incumbent

    def _next_generation(self) -> int:
        if self._generation is None:
            on_disk = [
                self._read_generation(p)
                for p in (self.intervals_path, self.solution_path)
            ]
            self._generation = max(
                (g for g in on_disk if g is not None), default=0
            )
        self._generation += 1
        return self._generation

    @staticmethod
    def _read_generation(path: Path) -> Optional[int]:
        try:
            payload = _read_json(path)
        except (FileNotFoundError, CheckpointError):
            return None
        if isinstance(payload, dict) and isinstance(
            payload.get("generation"), int
        ):
            return payload["generation"]
        return None

    def clear(self) -> None:
        for path in (self.intervals_path, self.solution_path):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    @staticmethod
    def _check_version(payload: Any, path: Path) -> None:
        if not isinstance(payload, dict) or payload.get("version") != _FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {path} has unsupported format: "
                f"{payload.get('version') if isinstance(payload, dict) else payload!r}"
            )


def _jsonable_solution(solution: Any) -> Any:
    """Coerce common solution shapes (tuples of ints) into JSON types."""
    if solution is None:
        return None
    if isinstance(solution, (list, tuple)):
        return [int(x) if hasattr(x, "__int__") else x for x in solution]
    return solution

"""The fold operator: active list -> interval (paper §3.4).

Folding summarises an arbitrary-size DFS frontier into two integers.
Because consecutive frontier ranges are adjacent (eq. 9), the union of
all ranges (eq. 8) collapses to eq. 10::

    interval(N) = [ number(N1),  number(Nk) + weight(Nk) )

i.e. only the first and last nodes matter.  ``fold`` applies eq. 10
directly; ``fold_by_union`` computes the eq. 8 union explicitly and is
kept as the executable specification the tests compare against.
"""

from __future__ import annotations

from repro.core.active_list import ActiveList
from repro.core.interval import Interval

__all__ = ["fold", "fold_by_union"]


def fold(active: ActiveList) -> Interval:
    """Fold a DFS active list into its covering interval (eq. 10).

    An empty list folds to the canonical empty interval — the work unit
    is exhausted.
    """
    if active.is_empty():
        return Interval(0, 0)
    first = active[0]
    last = active[len(active) - 1]
    return Interval(first.number, last.number + last.weight)


def fold_by_union(active: ActiveList) -> Interval:
    """Reference implementation of eq. 8: union of every node range.

    Quadratic in frontier size; exists so property tests can check that
    the O(1) eq. 10 shortcut agrees with the definitional union.
    """
    result = Interval(0, 0)
    for node in active:
        result = result.union_contiguous(node.range)
    return result

"""Regular search-tree shapes and per-depth node weights (paper §3.1).

The interval coding of Mezmaz, Melab & Talbi applies to trees of
*regular structure*: all nodes at the same depth have the same number of
children, hence the same *weight* (number of leaves of the sub-tree
rooted there, eq. 1).  A shape is therefore fully described by the
branching factor at each depth.  The paper's two worked examples are

* the **binary tree** — ``weight(n) = 2**(P - depth(n))`` (eq. 2), and
* the **permutation tree** — ``weight(n) = (P - depth(n))!`` (eq. 3),
  where every node has one child fewer than its father (eq. 4).

:class:`TreeShape` precomputes the weight vector indexed by depth, which
is exactly the vector the paper says is "calculated at the beginning of
the B&B algorithm".
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence, Tuple

from repro.exceptions import TreeShapeError

__all__ = ["TreeShape"]


class TreeShape:
    """Shape of a regular tree: branching factor per depth.

    Parameters
    ----------
    branching:
        ``branching[d]`` is the number of children of every node at
        depth ``d``.  The tree has leaves at depth ``len(branching)``.

    Notes
    -----
    Weights can be astronomically large (``50!`` for the paper's Ta056
    permutation tree), so all arithmetic uses Python's arbitrary
    precision integers; nothing here goes through floating point.
    """

    __slots__ = ("_branching", "_weights")

    def __init__(self, branching: Sequence[int]):
        branching = tuple(int(b) for b in branching)
        if not branching:
            raise TreeShapeError("a tree shape needs at least one level")
        if any(b < 1 for b in branching):
            raise TreeShapeError(
                f"branching factors must be >= 1, got {branching!r}"
            )
        self._branching = branching
        # weights[d] = number of leaves under a node at depth d (eq. 1).
        # Computed bottom-up: weight of a leaf is 1, weight of an
        # internal node is branching[d] * weight at depth d+1 because
        # all its children share the same weight in a regular tree.
        weights = [1] * (len(branching) + 1)
        for d in range(len(branching) - 1, -1, -1):
            weights[d] = branching[d] * weights[d + 1]
        self._weights = tuple(weights)

    # ------------------------------------------------------------------
    # constructors for the paper's tree families
    # ------------------------------------------------------------------
    @classmethod
    def permutation(cls, n: int) -> "TreeShape":
        """Permutation tree over ``n`` elements (eq. 3 / eq. 4).

        Depth ``d`` nodes have ``n - d`` children; leaves sit at depth
        ``n`` and there are ``n!`` of them.
        """
        if n < 1:
            raise TreeShapeError(f"permutation tree needs n >= 1, got {n}")
        return cls(tuple(range(n, 0, -1)))

    @classmethod
    def binary(cls, depth: int) -> "TreeShape":
        """Full binary tree with leaves at ``depth`` (eq. 2)."""
        if depth < 1:
            raise TreeShapeError(f"binary tree needs depth >= 1, got {depth}")
        return cls((2,) * depth)

    @classmethod
    def uniform(cls, arity: int, depth: int) -> "TreeShape":
        """Uniform ``arity``-ary tree with leaves at ``depth``."""
        if depth < 1:
            raise TreeShapeError(f"uniform tree needs depth >= 1, got {depth}")
        return cls((arity,) * depth)

    # ------------------------------------------------------------------
    # basic geometry
    # ------------------------------------------------------------------
    @property
    def branching(self) -> Tuple[int, ...]:
        """Branching factor per depth (length = leaf depth)."""
        return self._branching

    @property
    def leaf_depth(self) -> int:
        """Depth ``P`` at which the leaves sit."""
        return len(self._branching)

    @property
    def total_leaves(self) -> int:
        """Number of leaves of the whole tree (= weight of the root)."""
        return self._weights[0]

    def weight(self, depth: int) -> int:
        """Weight of any node at ``depth`` (eq. 1 specialised, §3.1)."""
        self._check_depth(depth)
        return self._weights[depth]

    def weights(self) -> Tuple[int, ...]:
        """The full per-depth weight vector (depth 0 .. leaf depth)."""
        return self._weights

    def num_children(self, depth: int) -> int:
        """Number of children of a node at ``depth`` (0 for leaves)."""
        self._check_depth(depth)
        if depth == self.leaf_depth:
            return 0
        return self._branching[depth]

    def is_leaf_depth(self, depth: int) -> bool:
        return depth == self.leaf_depth

    def node_count(self) -> int:
        """Total number of nodes in the tree (root included).

        Useful for exhaustive cross-checks on small trees; grows as the
        sum over depths of the products of branching factors.
        """
        total = 1
        level = 1
        for b in self._branching:
            level *= b
            total += level
        return total

    def nodes_at_depth(self, depth: int) -> int:
        """Number of nodes at a given depth."""
        self._check_depth(depth)
        return math.prod(self._branching[:depth])

    def iter_depths(self) -> Iterator[int]:
        """Iterate over all depths, root (0) to leaf depth inclusive."""
        return iter(range(self.leaf_depth + 1))

    # ------------------------------------------------------------------
    # dunder plumbing
    # ------------------------------------------------------------------
    def _check_depth(self, depth: int) -> None:
        if not 0 <= depth <= self.leaf_depth:
            raise TreeShapeError(
                f"depth {depth} outside [0, {self.leaf_depth}]"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TreeShape):
            return NotImplemented
        return self._branching == other._branching

    def __hash__(self) -> int:
        return hash(self._branching)

    def __repr__(self) -> str:
        if self._branching == tuple(range(len(self._branching), 0, -1)):
            return f"TreeShape.permutation({len(self._branching)})"
        if len(set(self._branching)) == 1:
            b = self._branching[0]
            if b == 2:
                return f"TreeShape.binary({len(self._branching)})"
            return f"TreeShape.uniform({b}, {len(self._branching)})"
        return f"TreeShape({list(self._branching)!r})"

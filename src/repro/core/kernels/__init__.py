"""Pluggable pool bound-kernel backends (PR 7).

The engine's pool-evaluation loop collects decomposition-pending
frontier nodes and bounds *all* their children in one backend call.
This package is the seam between that loop and the arithmetic:

* :class:`BoundKernel` / :data:`PoolEvaluator` — the backend contract
  (:mod:`~repro.core.kernels.base`);
* :func:`get_backend` — ``"numpy"`` (always available, the default),
  ``"numba"`` (JIT loop kernels, optional dep, graceful fallback) and
  ``"cupy"`` (GPU stub, same interface);
* :func:`register_pool_factory` — how problem packages plug their
  pooled kernels in per backend, without the core importing them.

::

    from repro.core.kernels import get_backend
    evaluator = get_backend("numpy").evaluator_for(problem)
    rows = evaluator(states, depth)   # one row of child bounds each

Every backend must be *bit-identical* to the scalar oracle
(``Problem.lower_bound``) — asserted by tests/test_kernel_backends.py.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.core.kernels.base import BoundKernel, PoolEvaluator
from repro.core.kernels.registry import (
    available_backends,
    backend_names,
    get_backend,
    pool_factory_for,
    register_backend,
    register_pool_factory,
)

__all__ = [
    "BoundKernel",
    "KERNEL_BACKEND_CHOICES",
    "PoolEvaluator",
    "available_backends",
    "backend_names",
    "get_backend",
    "pool_evaluator_for",
    "pool_factory_for",
    "register_backend",
    "register_pool_factory",
]

# The names the CLI / RuntimeConfig accept, beyond "auto" and "off".
KERNEL_BACKEND_CHOICES: Tuple[str, ...] = ("numpy", "numba", "cupy")


def pool_evaluator_for(
    problem: Any, backend: Optional[str] = None
) -> Optional[PoolEvaluator]:
    """Resolve the pool evaluator the engine should use for ``problem``.

    ``backend=None`` (auto, the default) pools with the numpy backend
    *iff* the problem registered a pooled kernel factory — problems
    without one keep their exact pre-pool behaviour rather than paying
    for speculative per-parent loops.  ``backend="off"`` disables
    pooling explicitly; any other name resolves via
    :func:`get_backend` (unknown names raise ``EngineError``).
    """
    if backend == "off":
        return None
    if backend is None:
        factory = pool_factory_for("numpy", type(problem))
        if factory is None:
            return None
        return factory(problem)
    return get_backend(backend).evaluator_for(problem)

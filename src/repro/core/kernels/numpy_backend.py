"""The always-available numpy pool backend (the default).

Resolution order for a problem:

1. a pool factory registered for ``("numpy", type(problem))`` — the
   vectorised whole-pool kernels (flowshop, TSP register these);
2. otherwise, if the problem overrides ``bound_children``, a generic
   evaluator that loops the per-parent batched kernel over the pool —
   no amortisation win, but it keeps ``--kernel-backend numpy``
   meaningful for any batched problem;
3. otherwise ``None`` — nothing poolable, the engine stays on its
   plain paths.

This backend is also the fallback target the optional backends
(numba, cupy) degrade to when their dependency is missing.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.core.kernels.base import BoundKernel, PoolEvaluator
from repro.core.kernels.registry import pool_factory_for
from repro.core.problem import Problem

__all__ = ["NumpyKernel"]


def _generic_evaluator(problem: Any) -> Optional[PoolEvaluator]:
    """Per-parent ``bound_children`` loop for problems without a
    registered pool kernel (``None`` when there is nothing to call)."""
    if not isinstance(problem, Problem):
        return None
    if type(problem).bound_children is Problem.bound_children:
        return None

    def evaluate(
        states: Sequence[Any], depth: int
    ) -> Optional[Sequence[Any]]:
        rows: List[Any] = [
            problem.bound_children(state, depth) for state in states
        ]
        return rows

    return evaluate


class NumpyKernel(BoundKernel):
    """Pure-numpy pool kernels; always available."""

    name = "numpy"

    def evaluator_for(self, problem: Any) -> Optional[PoolEvaluator]:
        factory = pool_factory_for(self.name, type(problem))
        if factory is not None:
            evaluator = factory(problem)
            if evaluator is not None:
                return evaluator
        return _generic_evaluator(problem)

"""The numba JIT pool backend (optional dependency).

Resolves factories registered under ``"numba"`` — the flowshop LB1 /
LB2 loop kernels in :mod:`repro.problems.flowshop.kernels_numba` —
compiling them on first use.  numba itself is imported lazily and only
from inside this package (rule RC09); when it is missing, or a compile
fails, the backend warns **once per process** and degrades to the
numpy backend's evaluator, so ``--kernel-backend numba`` never breaks
a run on a machine without the accelerator.
"""

from __future__ import annotations

import warnings
from typing import Any, Optional

from repro.core.kernels.base import BoundKernel, PoolEvaluator
from repro.core.kernels.registry import get_backend, pool_factory_for

__all__ = ["NumbaKernel"]


class NumbaKernel(BoundKernel):
    """Flowshop LB1/LB2 inner loops under ``numba.njit``."""

    name = "numba"

    def __init__(self) -> None:
        self._probed: Optional[bool] = None
        self._warned = False

    def available(self) -> bool:
        if self._probed is None:
            try:
                import numba  # noqa: F401  # lazy probe of the optional dep
            except Exception:
                self._probed = False
            else:
                self._probed = True
        return self._probed

    def unavailable_reason(self) -> Optional[str]:
        if self.available():
            return None
        return "numba is not installed (pip install 'numba')"

    def _warn_once(self, message: str) -> None:
        if not self._warned:
            self._warned = True
            warnings.warn(message, RuntimeWarning, stacklevel=3)

    def evaluator_for(self, problem: Any) -> Optional[PoolEvaluator]:
        if self.available():
            factory = pool_factory_for(self.name, type(problem))
            if factory is not None:
                try:
                    evaluator = factory(problem)
                except Exception as exc:
                    self._warn_once(
                        f"numba kernel setup failed ({exc!r}); "
                        f"falling back to the numpy pool backend"
                    )
                else:
                    if evaluator is not None:
                        return evaluator
            # No numba kernels for this problem type: pool with numpy
            # silently — that is still the documented behaviour, not a
            # degraded install.
        else:
            self._warn_once(
                "kernel backend 'numba' requested but numba is not "
                "installed; falling back to the numpy pool backend "
                "(pip install 'numba' for the JIT kernels)"
            )
        return get_backend("numpy").evaluator_for(problem)

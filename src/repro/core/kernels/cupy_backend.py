"""The CuPy GPU pool backend (stub, optional dependency).

Wired through the same :class:`BoundKernel` interface as numpy and
numba so ``get_backend("cupy")`` resolves, the CLI accepts
``--kernel-backend cupy``, and a GPU port only has to register pool
factories under ``"cupy"`` — the engine side is already done.  This is
the slot the GPU flow-shop B&B line (Chakroun & Melab; Gmys, see
PAPERS.md) plugs into: their 100x comes from bounding thousands of
pool nodes per kernel launch, exactly the pool shape the engine hands
evaluators here.

No cupy factories ship yet, and cupy is imported lazily (rule RC09):
without cupy — or until a factory is registered — the backend warns
once and degrades to the numpy backend, so selecting it never breaks
a run.
"""

from __future__ import annotations

import warnings
from typing import Any, Optional

from repro.core.kernels.base import BoundKernel, PoolEvaluator
from repro.core.kernels.registry import get_backend, pool_factory_for

__all__ = ["CupyKernel"]


class CupyKernel(BoundKernel):
    """GPU pool-kernel slot; falls back to numpy until kernels land."""

    name = "cupy"

    def __init__(self) -> None:
        self._probed: Optional[bool] = None
        self._warned = False

    def available(self) -> bool:
        if self._probed is None:
            try:
                import cupy  # noqa: F401  # lazy probe of the optional dep
            except Exception:
                self._probed = False
            else:
                self._probed = True
        return self._probed

    def unavailable_reason(self) -> Optional[str]:
        if self.available():
            return None
        return "cupy is not installed (pip install 'cupy-cuda12x' or similar)"

    def _warn_once(self, message: str) -> None:
        if not self._warned:
            self._warned = True
            warnings.warn(message, RuntimeWarning, stacklevel=3)

    def evaluator_for(self, problem: Any) -> Optional[PoolEvaluator]:
        if self.available():
            factory = pool_factory_for(self.name, type(problem))
            if factory is not None:
                try:
                    evaluator = factory(problem)
                except Exception as exc:
                    self._warn_once(
                        f"cupy kernel setup failed ({exc!r}); "
                        f"falling back to the numpy pool backend"
                    )
                else:
                    if evaluator is not None:
                        return evaluator
            self._warn_once(
                "kernel backend 'cupy' has no GPU kernels registered for "
                f"{type(problem).__name__} yet; using the numpy pool backend"
            )
        else:
            self._warn_once(
                "kernel backend 'cupy' requested but cupy is not "
                "installed; falling back to the numpy pool backend"
            )
        return get_backend("numpy").evaluator_for(problem)

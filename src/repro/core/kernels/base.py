"""Backend interface for pool bound kernels.

The engine's pool-evaluation loop (PR 7) hands *whole frontier pools*
— many same-depth parent states — to one backend call, amortising the
per-call overhead that sibling-sized batches (PR 2) still pay per
node.  This module defines the two contracts that make the backends
pluggable:

* :data:`PoolEvaluator` — the per-problem callable a backend resolves:
  ``evaluator(states, depth)`` bounds the children of every parent in
  ``states`` (all at the same ``depth``) and returns one row of child
  bounds per parent, in rank order.  Rows must be **bit-identical** to
  what :meth:`Problem.lower_bound` would return child by child — the
  engine's accounting equivalence rests on it, and the property suite
  (``tests/test_kernel_backends.py``) enforces it per backend.
* :class:`BoundKernel` — a named backend (``numpy`` / ``numba`` /
  ``cupy``) that resolves a :data:`PoolEvaluator` for a concrete
  problem instance, typically via the factories problem packages
  register with :mod:`repro.core.kernels.registry`.

Optional-dependency backends must *never* import their accelerator at
module level (rule RC09): availability is probed lazily and a missing
dependency degrades to the numpy backend with a one-time warning, so
``--kernel-backend numba`` on a machine without numba still solves —
just slower.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, ClassVar, Optional, Sequence

__all__ = ["BoundKernel", "PoolEvaluator"]

# ``evaluator(states, depth) -> rows | None``: one row of child bounds
# (any sequence or ndarray, rank order) per parent state, or ``None``
# per row / for the whole pool to decline — the engine then falls back
# to the per-parent ``Problem.bound_children`` path for those parents.
PoolEvaluator = Callable[[Sequence[Any], int], Optional[Sequence[Any]]]


class BoundKernel(ABC):
    """One pool-evaluation backend, identified by :attr:`name`.

    Backends are stateless singletons held by the registry; all
    per-problem state lives in the evaluator they resolve.
    """

    name: ClassVar[str] = "abstract"

    def available(self) -> bool:
        """Whether the backend's dependencies are importable here."""
        return True

    def unavailable_reason(self) -> Optional[str]:
        """Human-readable reason when :meth:`available` is ``False``."""
        return None

    @abstractmethod
    def evaluator_for(self, problem: Any) -> Optional[PoolEvaluator]:
        """Resolve the pool evaluator for ``problem``.

        Returns ``None`` when the problem offers nothing poolable (no
        registered factory and no ``bound_children`` override); the
        engine then runs the plain batched path.  Unavailable optional
        backends fall back to the numpy backend's evaluator instead of
        raising, warning once per process.
        """

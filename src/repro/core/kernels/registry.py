"""Backend and pool-factory registry.

Two registries, deliberately separate so the dependency arrows stay
acyclic:

* **backends** — name -> :class:`BoundKernel` singleton.  The three
  built-ins (``numpy``, ``numba``, ``cupy``) register lazily on first
  lookup, so importing this module costs nothing.
* **pool factories** — ``(backend name, problem type) -> factory``.
  Problem packages register their pooled kernels here at import time
  (e.g. :mod:`repro.problems.flowshop.pool`); the core never imports
  problem code.  A factory receives the live problem instance and
  returns the :data:`PoolEvaluator` bound to it (or ``None`` to
  decline, e.g. when a JIT compile fails).

Lookup walks the problem type's MRO, so a subclass of a registered
problem inherits its pooled kernels unless it registers its own.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.core.kernels.base import BoundKernel, PoolEvaluator
from repro.exceptions import EngineError

__all__ = [
    "available_backends",
    "backend_names",
    "get_backend",
    "pool_factory_for",
    "register_backend",
    "register_pool_factory",
]

PoolFactory = Callable[[Any], Optional[PoolEvaluator]]

_BACKENDS: Dict[str, BoundKernel] = {}
_POOL_FACTORIES: Dict[Tuple[str, type], PoolFactory] = {}
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Register the built-in backends on first registry use.

    Imported here (not at module top) so ``registry`` <-> backend
    modules do not form an import cycle: backends import the registry,
    the registry only touches them from inside this function.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from repro.core.kernels import cupy_backend, numba_backend, numpy_backend

    register_backend(numpy_backend.NumpyKernel())
    register_backend(numba_backend.NumbaKernel())
    register_backend(cupy_backend.CupyKernel())


def register_backend(backend: BoundKernel) -> BoundKernel:
    """Register (or replace) a backend under ``backend.name``."""
    _BACKENDS[backend.name] = backend
    return backend


def get_backend(name: str) -> BoundKernel:
    """The backend registered under ``name`` (raises on unknown)."""
    _ensure_builtins()
    backend = _BACKENDS.get(name)
    if backend is None:
        known = ", ".join(sorted(_BACKENDS))
        raise EngineError(
            f"unknown kernel backend {name!r}; registered backends: {known}"
        )
    return backend


def backend_names() -> List[str]:
    """All registered backend names (available or not), sorted."""
    _ensure_builtins()
    return sorted(_BACKENDS)


def available_backends() -> List[str]:
    """Names of the backends whose dependencies import here, sorted."""
    _ensure_builtins()
    return sorted(
        name for name, backend in _BACKENDS.items() if backend.available()
    )


def register_pool_factory(
    backend: str, problem_type: Type[Any], factory: PoolFactory
) -> None:
    """Register ``factory`` as ``backend``'s evaluator source for
    ``problem_type`` (and, via MRO lookup, its subclasses)."""
    _POOL_FACTORIES[(backend, problem_type)] = factory


def pool_factory_for(
    backend: str, problem_type: Type[Any]
) -> Optional[PoolFactory]:
    """The most specific factory for ``problem_type`` under ``backend``."""
    for klass in problem_type.__mro__:
        factory = _POOL_FACTORIES.get((backend, klass))
        if factory is not None:
            return factory
    return None

"""Checkpointed sequential resolution: kill it, restart it, keep the proof.

The interval coding makes a *single* B&B process restartable for free:
fold the frontier to two integers every ``checkpoint_nodes`` nodes,
persist them (plus the incumbent) through the §4.1 two-file store, and
on restart unfold and continue.  This is the paper's fault-tolerance
machinery applied at N = 1 — and the easiest way to run a multi-day
exact resolution on one workstation through reboots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.core.checkpoint import CheckpointStore
from repro.core.engine import IntervalExplorer, SolveResult
from repro.core.interval import Interval
from repro.core.interval_set import IntervalSet
from repro.core.problem import Problem
from repro.core.stats import Incumbent

__all__ = ["ResumableSolver"]


@dataclass
class _Progress:
    checkpoints_written: int = 0
    resumed_from: Optional[Interval] = None


class ResumableSolver:
    """Sequential solve with periodic fold-and-persist checkpoints.

    Parameters
    ----------
    problem:
        The problem to minimise.
    directory:
        Where the two checkpoint files live.  A directory holding a
        previous run of the *same* problem resumes it; a fresh
        directory starts from the root interval.
    checkpoint_nodes:
        Explore this many nodes between checkpoints.
    kernel_backend / pool_size / pool_scan_budget:
        Pool-evaluation kernel configuration forwarded to the
        underlying :class:`IntervalExplorer` (see
        :mod:`repro.core.kernels`).
    frontier / frontier_width:
        Frontier strategy forwarded to the explorer.  ``"wave"``
        checkpoints exactly like ``"dfs"`` — the fold is still the
        frontier's smallest number and the interval end — but a
        resume re-expands from the *covering* interval, so a few
        already-decomposed internal nodes above the fold point are
        re-decomposed (never re-evaluated leaves; redundancy, not
        loss).

    Example
    -------
    >>> solver = ResumableSolver(problem, "/tmp/run1")
    >>> result = solver.run()        # Ctrl-C any time...
    >>> result = ResumableSolver(problem, "/tmp/run1").run()  # ...resume
    """

    def __init__(
        self,
        problem: Problem,
        directory,
        checkpoint_nodes: int = 100_000,
        initial_upper_bound: float = math.inf,
        initial_solution=None,
        kernel_backend=None,
        pool_size: int = 64,
        pool_scan_budget: Optional[int] = None,
        frontier: str = "dfs",
        frontier_width: int = 32768,
    ):
        self.problem = problem
        self.store = CheckpointStore(Path(directory))
        self.checkpoint_nodes = checkpoint_nodes
        self.progress = _Progress()

        intervals, incumbent = self.store.load()
        root = Interval(0, problem.total_leaves())
        if intervals is None:
            interval = root
        else:
            pending = intervals.intervals()
            # A sequential run only ever persists one interval (its own
            # frontier); an empty list means the previous run finished.
            interval = pending[0] if pending else Interval(root.end, root.end)
            self.progress.resumed_from = interval
        if incumbent is None:
            incumbent = Incumbent(initial_upper_bound, initial_solution)
        # A problem-supplied warm start seeds (or tightens) the
        # incumbent; monotonic update, so a checkpointed bound that is
        # already better survives and the proved optimum is unchanged.
        warm = problem.warm_start()
        if warm is not None:
            incumbent.update(*warm)
        self.explorer = IntervalExplorer(
            problem,
            interval,
            incumbent=incumbent,
            kernel_backend=kernel_backend,
            pool_size=pool_size,
            pool_scan_budget=pool_scan_budget,
            frontier=frontier,
            frontier_width=frontier_width,
        )
        self._checkpoint()  # make the starting state durable immediately

    # ------------------------------------------------------------------
    def _checkpoint(self) -> None:
        remaining = self.explorer.remaining_interval()
        intervals = IntervalSet()
        if not remaining.is_empty():
            intervals.add(remaining)
        self.store.save(intervals, self.explorer.incumbent)
        self.progress.checkpoints_written += 1

    def step(self) -> bool:
        """One checkpoint period; returns False once exploration is done."""
        report = self.explorer.step(self.checkpoint_nodes)
        self._checkpoint()
        return not report.finished and not self.explorer.is_finished()

    def run(self) -> SolveResult:
        """Explore to completion (resuming transparently), with proof."""
        while self.step():
            pass
        return SolveResult(
            cost=self.explorer.incumbent.cost,
            solution=self.explorer.incumbent.solution,
            stats=self.explorer.stats,
            interval=Interval(0, self.problem.total_leaves()),
            optimal=True,
            pool_occupancy=dict(self.explorer.pool_occupancy),
            frontier_spills=self.explorer.frontier_spills,
        )

    def remaining_interval(self) -> Interval:
        return self.explorer.remaining_interval()

"""Coordinator-side interval operators: partitioning and selection (§4.2).

These are pure policy functions; :class:`~repro.core.interval_set.IntervalSet`
wires them to the bookkeeping.

*Partitioning* splits ``[A, B)`` into ``[A, C)`` for the holder and
``[C, B)`` for the requester.  The split point ``C`` is proportional to
the computing power of each side: a fast requester takes a bigger tail.
Intervals with no live holder belong to "a virtual process which has a
null power", so ``C == A`` and the requester gets everything.

*Selection* does not pick the longest interval but the one that yields
the longest requester share ``[C, B)`` — the paper is explicit about
this distinction.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Tuple, TypeVar

from repro.core.interval import Interval

__all__ = ["partition_point", "requester_share_length", "select_for_request"]

K = TypeVar("K")


def partition_point(
    interval: Interval, holder_power: float, requester_power: float
) -> int:
    """Split point ``C`` of ``[A, B)`` proportional to processor powers.

    The holder keeps ``holder_power / (holder_power + requester_power)``
    of the length (it is already exploring from ``A``).  A null-power
    holder (unassigned interval) yields ``C == A``.  Powers must be
    non-negative; a zero-power requester paired with a zero-power holder
    also hands everything to the requester (the request proves it is
    alive).
    """
    if holder_power < 0 or requester_power < 0:
        raise ValueError("processor powers must be non-negative")
    total = holder_power + requester_power
    if total == 0 or holder_power == 0:
        return interval.begin
    keep = (interval.length * holder_power) // total if isinstance(
        holder_power, int
    ) and isinstance(requester_power, int) else int(
        interval.length * (holder_power / total)
    )
    return interval.begin + keep


def requester_share_length(
    interval: Interval, holder_power: float, requester_power: float
) -> int:
    """Length of ``[C, B)`` that a split would give the requester."""
    return interval.end - partition_point(interval, holder_power, requester_power)


def select_for_request(
    candidates: Iterable[Tuple[K, Interval, float]],
    requester_power: float,
) -> Optional[K]:
    """Selection operator: maximise the requester share (§4.2).

    Parameters
    ----------
    candidates:
        ``(key, interval, holder_power)`` triples.
    requester_power:
        Power of the requesting process.

    Returns
    -------
    The key of the best candidate, or ``None`` when there are none.
    Ties break on the smallest key for determinism.
    """
    best_key: Optional[K] = None
    best_share = -1
    for key, interval, holder_power in candidates:
        share = requester_share_length(interval, holder_power, requester_power)
        if share > best_share or (
            share == best_share and best_key is not None and repr(key) < repr(best_key)
        ):
            best_share = share
            best_key = key
    return best_key

"""Active-node lists: the exploration-side view of a work unit (§3).

During depth-first exploration the not-yet-visited nodes form a list
``N1 .. Nk`` whose ranges are pairwise adjacent (eq. 9)::

    for all i < k:   end(range(Ni)) == begin(range(Ni+1))

so the union of their ranges is a single interval — that is what makes
the fold operator (eq. 10) a two-integer summary.  :class:`ActiveList`
stores the nodes by rank path, keeps them in increasing-number order
and enforces the contiguity invariant.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.core.interval import Interval
from repro.core.numbering import check_rank_path, node_range
from repro.core.tree import TreeShape
from repro.exceptions import FoldError

__all__ = ["ActiveNode", "ActiveList"]

RankPath = Tuple[int, ...]


class ActiveNode:
    """A generated-but-unvisited node: rank path plus cached range."""

    __slots__ = ("ranks", "range")

    def __init__(self, shape: TreeShape, ranks: Sequence[int]):
        self.ranks: RankPath = check_rank_path(shape, ranks)
        self.range: Interval = node_range(shape, self.ranks)

    @property
    def depth(self) -> int:
        return len(self.ranks)

    @property
    def number(self) -> int:
        return self.range.begin

    @property
    def weight(self) -> int:
        return self.range.length

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ActiveNode):
            return NotImplemented
        return self.ranks == other.ranks

    def __hash__(self) -> int:
        return hash(self.ranks)

    def __repr__(self) -> str:
        return f"ActiveNode({list(self.ranks)!r}, range={self.range})"


class ActiveList:
    """An ordered DFS frontier over a regular tree.

    The constructor validates the eq. 9 contiguity invariant: the
    ranges of consecutive nodes must be adjacent.  An empty list is
    allowed (an exhausted work unit).
    """

    __slots__ = ("shape", "_nodes")

    def __init__(self, shape: TreeShape, nodes: Iterable[ActiveNode] = ()):
        self.shape = shape
        self._nodes: List[ActiveNode] = list(nodes)
        self._validate()

    @classmethod
    def from_rank_paths(
        cls, shape: TreeShape, paths: Iterable[Sequence[int]]
    ) -> "ActiveList":
        return cls(shape, (ActiveNode(shape, p) for p in paths))

    @classmethod
    def whole_tree(cls, shape: TreeShape) -> "ActiveList":
        """The initial frontier: just the root node."""
        return cls(shape, (ActiveNode(shape, ()),))

    def _validate(self) -> None:
        for left, right in zip(self._nodes, self._nodes[1:]):
            if not left.range.is_adjacent_left_of(right.range):
                raise FoldError(
                    f"active list violates DFS contiguity (eq. 9): "
                    f"{left.range} then {right.range}"
                )

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[ActiveNode]:
        return iter(self._nodes)

    def __getitem__(self, index: int) -> ActiveNode:
        return self._nodes[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ActiveList):
            return NotImplemented
        return self.shape == other.shape and self._nodes == other._nodes

    def is_empty(self) -> bool:
        return not self._nodes

    @property
    def cardinality(self) -> int:
        """Number of active nodes ("the number of elements it contains")."""
        return len(self._nodes)

    def covered_leaves(self) -> int:
        """Total number of leaves reachable from the frontier."""
        return sum(node.weight for node in self._nodes)

    def rank_paths(self) -> List[RankPath]:
        return [node.ranks for node in self._nodes]

    def __repr__(self) -> str:
        return (
            f"ActiveList({self.shape!r}, "
            f"{[list(n.ranks) for n in self._nodes]!r})"
        )

"""Node numbers and ranges in a regular tree (paper §3.2–§3.3).

A node is addressed by its *rank path*: the tuple of ranks taken on the
way down from the root, where the rank of a node is its position among
its brothers in generation order (first generated child has rank 0).
The root's rank path is the empty tuple.

The paper assigns each node a *number* (eq. 6 for regular trees)::

    number(n) = sum over i in path(n) of rank(i) * weight(i)

and a *range* (eq. 7)::

    range(n) = [number(n), number(n) + weight(n))

The number of an internal node equals the number of its leftmost
descendant leaf; leaf numbers are the unique integers
``0 .. total_leaves - 1`` and the mapping ``leaf -> number`` is a
bijection (exercised exhaustively in the test suite).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.interval import Interval
from repro.core.tree import TreeShape
from repro.exceptions import NumberingError

__all__ = [
    "check_rank_path",
    "node_number",
    "node_range",
    "leaf_ranks_for_number",
    "ancestor_at_depth",
    "common_depth",
]

RankPath = Tuple[int, ...]


def check_rank_path(shape: TreeShape, ranks: Sequence[int]) -> RankPath:
    """Validate a rank path against a shape and return it as a tuple.

    Raises
    ------
    NumberingError
        If the path is longer than the leaf depth or any rank falls
        outside the branching factor of its level.
    """
    ranks = tuple(int(r) for r in ranks)
    if len(ranks) > shape.leaf_depth:
        raise NumberingError(
            f"rank path of length {len(ranks)} exceeds leaf depth "
            f"{shape.leaf_depth}"
        )
    for depth, rank in enumerate(ranks):
        limit = shape.branching[depth]
        if not 0 <= rank < limit:
            raise NumberingError(
                f"rank {rank} at depth {depth} outside [0, {limit})"
            )
    return ranks


def node_number(shape: TreeShape, ranks: Sequence[int]) -> int:
    """Number of the node addressed by ``ranks`` (eq. 6).

    The weight that multiplies the rank taken at depth ``d`` is the
    weight of the *child* level ``d + 1``: stepping to the ``r``-th
    child skips ``r`` whole sibling sub-trees of that weight.
    """
    ranks = check_rank_path(shape, ranks)
    weights = shape.weights()
    number = 0
    for depth, rank in enumerate(ranks):
        number += rank * weights[depth + 1]
    return number


def node_range(shape: TreeShape, ranks: Sequence[int]) -> Interval:
    """Range ``[number(n), number(n) + weight(n))`` of a node (eq. 7)."""
    ranks = check_rank_path(shape, ranks)
    begin = node_number(shape, ranks)
    return Interval(begin, begin + shape.weight(len(ranks)))


def leaf_ranks_for_number(shape: TreeShape, number: int) -> RankPath:
    """Rank path of the leaf whose number is ``number``.

    This is the inverse of :func:`node_number` restricted to leaves: a
    mixed-radix decomposition of ``number`` over the per-depth weights.
    """
    if not 0 <= number < shape.total_leaves:
        raise NumberingError(
            f"leaf number {number} outside [0, {shape.total_leaves})"
        )
    weights = shape.weights()
    ranks: List[int] = []
    remainder = number
    for depth in range(shape.leaf_depth):
        w = weights[depth + 1]
        rank, remainder = divmod(remainder, w)
        ranks.append(rank)
    return tuple(ranks)


def ancestor_at_depth(ranks: Sequence[int], depth: int) -> RankPath:
    """Rank path of the ancestor of ``ranks`` at the given depth."""
    if not 0 <= depth <= len(ranks):
        raise NumberingError(
            f"depth {depth} outside [0, {len(ranks)}] for ancestor lookup"
        )
    return tuple(ranks[:depth])


def common_depth(a: Sequence[int], b: Sequence[int]) -> int:
    """Depth of the deepest common ancestor of two rank paths."""
    depth = 0
    for ra, rb in zip(a, b):
        if ra != rb:
            break
        depth += 1
    return depth

"""Core of the reproduction: interval-coded Branch and Bound.

This subpackage implements the paper's contribution proper — the node
numbering of regular search trees (§3.1–3.3), the fold/unfold operators
(§3.4–3.5), the interval algebra the coordinator runs on (§4), and a
resumable interval-constrained B&B engine.

Public surface re-exported here::

    from repro.core import (
        TreeShape, Interval, IntervalSet, ActiveList, ActiveNode,
        fold, unfold, Problem, IntervalExplorer, solve,
        Incumbent, ExplorationStats, CheckpointStore,
    )
"""

from repro.core.active_list import ActiveList, ActiveNode
from repro.core.checkpoint import (
    CheckpointJournal,
    CheckpointStore,
    JournalRecord,
    RecoveredState,
)
from repro.core.engine import (
    FRONTIER_CHOICES,
    IntervalExplorer,
    SolveResult,
    StepReport,
    brute_force_minimum,
    solve,
)
from repro.core.fold import fold, fold_by_union
from repro.core.interval import Interval
from repro.core.interval_set import Assignment, IntervalRecord, IntervalSet
from repro.core.numbering import (
    leaf_ranks_for_number,
    node_number,
    node_range,
)
from repro.core.problem import Problem
from repro.core.resumable import ResumableSolver
from repro.core.stats import ExplorationStats, Incumbent
from repro.core.tree import TreeShape
from repro.core.unfold import UnfoldStats, unfold, unfold_with_stats

__all__ = [
    "ActiveList",
    "ActiveNode",
    "Assignment",
    "CheckpointJournal",
    "CheckpointStore",
    "JournalRecord",
    "RecoveredState",
    "ExplorationStats",
    "FRONTIER_CHOICES",
    "Incumbent",
    "Interval",
    "IntervalExplorer",
    "IntervalRecord",
    "IntervalSet",
    "Problem",
    "ResumableSolver",
    "SolveResult",
    "StepReport",
    "TreeShape",
    "UnfoldStats",
    "brute_force_minimum",
    "fold",
    "fold_by_union",
    "leaf_ranks_for_number",
    "node_number",
    "node_range",
    "solve",
    "unfold",
    "unfold_with_stats",
]

"""The :class:`Problem` interface the B&B engine explores.

A problem instance describes a *regular* search tree (so the interval
coding applies) plus the three B&B ingredients the paper's operators
need: branching, bounding and leaf evaluation.  The library consistently
**minimises** — costs may be ints or floats.

The crucial contract is *deterministic branching order*: the rank of a
child is its position in the sequence returned by :meth:`branch`, and
ranks define the node numbering (§3.2).  ``branch`` must therefore be a
pure function of the parent state — two processes decomposing the same
node anywhere on the grid must generate the same children in the same
order, otherwise intervals would mean different work on different
hosts.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional, Sequence, Tuple

from repro.core.tree import TreeShape

__all__ = ["Problem"]


class Problem(ABC):
    """A minimisation problem over a regular search tree.

    Subclasses provide immutable-ish *states*; the engine never mutates
    a state it did not create and may keep many alive on its stack.
    """

    @abstractmethod
    def tree_shape(self) -> TreeShape:
        """Shape of the search tree (defines weights and numbering)."""

    @abstractmethod
    def root_state(self) -> Any:
        """State attached to the root node (the whole search space)."""

    @abstractmethod
    def branch(self, state: Any, depth: int) -> Sequence[Any]:
        """Children of ``state`` in rank order (rank 0 first).

        Must return exactly ``tree_shape().num_children(depth)`` states
        and be deterministic in ``state`` alone — the grid-wide node
        numbering depends on it.
        """

    @abstractmethod
    def lower_bound(self, state: Any, depth: int) -> float:
        """Lower bound on the cost of every leaf below ``state``.

        The engine prunes the sub-tree when this is >= the incumbent
        cost.  Returning ``-inf`` disables pruning for the node.  For a
        leaf state this should equal :meth:`leaf_cost` (the engine only
        calls :meth:`leaf_cost` on leaves, but a consistent bound keeps
        the LB <= cost invariant testable).
        """

    def bound_children(self, state: Any, depth: int) -> Optional[Sequence[float]]:
        """Lower bounds of *all* children of ``state``, in rank order.

        Optional batch counterpart of :meth:`lower_bound`: when a
        problem can evaluate the bounds of every child of a node in one
        vectorised kernel (the GPU-B&B structure of Chakroun & Melab),
        the engine calls this once per decomposition instead of calling
        :meth:`lower_bound` once per child, and prunes children before
        they are ever pushed.

        The returned sequence must have exactly
        ``tree_shape().num_children(depth)`` entries — one per child
        returned by :meth:`branch` — and entry ``r`` must equal
        ``lower_bound(branch(state, depth)[r], depth + 1)`` exactly
        (same admissibility, same value; the engine's node accounting
        relies on the equivalence).  Returning ``None`` falls back to
        the per-node path for this decomposition.  The engine never
        calls this when the children are leaves.
        """
        return None

    @abstractmethod
    def leaf_cost(self, state: Any) -> float:
        """Exact cost of a leaf state."""

    def leaf_solution(self, state: Any) -> Any:
        """Serialisable representation of a leaf solution.

        Defaults to the state itself; problems whose states carry
        incremental caches should override to strip them.
        """
        return state

    def warm_start(self) -> Optional[Tuple[float, Any]]:
        """Optional heuristic incumbent ``(cost, solution)`` to seed solves.

        Consulted by :func:`~repro.core.engine.solve`, the
        :class:`~repro.core.resumable.ResumableSolver` and the grid
        service before exploration begins.  ``cost`` must be the exact
        cost of a *feasible* ``solution`` (the incumbent's solution may
        be reported as the optimum if nothing beats it), so a roll-out
        or greedy heuristic qualifies; a mere estimate does not.
        Because B&B only prunes subtrees whose bound reaches the
        incumbent and bounds are admissible, a valid warm start can
        never change the proved optimum — only how fast it is reached
        (property-tested in ``tests/test_warm_start.py``).

        Default: ``None`` (no heuristic — exploration starts cold).
        """
        return None

    # ------------------------------------------------------------------
    # conveniences shared by all problems
    # ------------------------------------------------------------------
    def total_leaves(self) -> int:
        """Size of the solution space (= weight of the root)."""
        return self.tree_shape().total_leaves

    def name(self) -> str:
        """Human-readable identifier used in logs and benchmark tables."""
        return type(self).__name__

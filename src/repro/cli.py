"""Command-line interface: ``repro <command>``.

Commands
--------
``repro solve``
    Exactly solve a flow-shop instance (sequential or parallel).
``repro simulate``
    Run a grid simulation and print the Table 2 statistics.
``repro grid serve`` / ``repro grid worker``
    Run the farmer–worker runtime over real TCP: a standalone
    coordinator server, and workers that connect to it by address
    (two terminals on one machine, or many machines).
``repro grid service`` / ``repro job ...``
    The multi-tenant front door: one job-queue service multiplexing
    many concurrent solves over a shared worker fleet, and the client
    verbs (``submit``/``status``/``result``/``cancel``/``list``) that
    talk to it (see ``docs/service.md``).
``repro tables``
    Print the paper's static tables (1 and 3).
``repro taillard``
    Print a Taillard benchmark instance.
``repro check``
    Run the project-specific static-analysis pass (see
    ``docs/static-analysis.md``).
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1, rejected with a clear message.

    Guards the engine-bound size knobs (``--pool-size``,
    ``--frontier-width``, ``--pool-scan-budget``) at the parser, so a
    bad value dies as a usage error instead of an ``EngineError``
    traceback out of a worker process.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer (>= 1), got {value}"
        )
    return value


def _add_kernel_arguments(parser: argparse.ArgumentParser) -> None:
    """The pool-evaluation kernel knobs shared by solve/worker/fleet."""
    parser.add_argument(
        "--kernel-backend",
        choices=["auto", "off", "numpy", "numba", "cupy"],
        default="auto",
        help="bound-kernel backend for pool evaluation: 'auto' uses a "
             "registered pool kernel when one exists, 'off' keeps "
             "per-family batched bounds only, a name forces that "
             "backend (numba/cupy fall back to numpy with a warning "
             "when the dependency is missing)",
    )
    parser.add_argument(
        "--pool-size", type=_positive_int, default=64,
        help="frontier entries bounded per pool evaluation",
    )
    parser.add_argument(
        "--pool-scan-budget", type=_positive_int, default=None,
        help="stack entries one DFS pool refill may inspect while "
             "gathering same-depth candidates (default: "
             "max(4 * pool size, 64); ignored in wave mode, where the "
             "wave itself is the pool)",
    )
    parser.add_argument(
        "--frontier",
        choices=["dfs", "wave"],
        default="dfs",
        help="exploration order: 'dfs' is the paper's "
             "smallest-number-first order; 'wave' explores same-depth "
             "waves that fill pool kernels to the pool size (identical "
             "optimum and proof; node counts may differ)",
    )
    parser.add_argument(
        "--frontier-width", type=_positive_int, default=32768,
        help="wave mode only: spill to depth-first pops while the "
             "frontier holds more than this many entries",
    )


def _kernel_backend_arg(args) -> Optional[str]:
    """Map the CLI spelling to the engine's kernel_backend parameter."""
    return None if args.kernel_backend == "auto" else args.kernel_backend


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Grid-enabled Branch and Bound with interval-coded work "
            "units (Mezmaz, Melab & Talbi, IPPS 2007)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve_p = sub.add_parser("solve", help="exactly solve a flow-shop instance")
    solve_p.add_argument("--jobs", type=int, default=9)
    solve_p.add_argument("--machines", type=int, default=4)
    solve_p.add_argument("--seed", type=int, default=1)
    solve_p.add_argument(
        "--taillard", type=int, default=None, metavar="INDEX",
        help="use Taillard instance INDEX of the jobs x machines class",
    )
    solve_p.add_argument("--workers", type=int, default=0,
                         help="0: sequential; N>0: parallel processes")
    solve_p.add_argument("--bound", choices=["lb1", "lb2", "combined"],
                         default="combined")
    solve_p.add_argument("--no-neh", action="store_true",
                         help="skip the NEH warm start")
    solve_p.add_argument("--ig-iterations", type=int, default=0,
                         help="refine the warm start with Iterated Greedy "
                              "(the paper's reference [9]) for N iterations")
    solve_p.add_argument("--checkpoint-dir", default=None,
                         help="periodic fold-and-persist checkpoints; "
                              "re-running with the same dir resumes")
    _add_kernel_arguments(solve_p)

    sim_p = sub.add_parser("simulate", help="run a grid simulation")
    sim_p.add_argument("--workers", type=int, default=64,
                       help="worker count (ignored with --paper-platform)")
    sim_p.add_argument("--paper-platform", action="store_true",
                       help="use the full 1889-processor Table 1 pool")
    sim_p.add_argument("--days", type=float, default=1.0,
                       help="calibrated virtual duration of the workload")
    sim_p.add_argument("--seed", type=int, default=0)
    sim_p.add_argument("--update-period", type=float, default=174.0)
    sim_p.add_argument("--irregularity", type=float, default=1.2)
    sim_p.add_argument("--always-on", action="store_true")

    p2p_p = sub.add_parser(
        "p2p", help="peer-to-peer resolution (the paper's future work)"
    )
    p2p_p.add_argument("--peers", type=int, default=8)
    p2p_p.add_argument("--jobs", type=int, default=8)
    p2p_p.add_argument("--machines", type=int, default=4)
    p2p_p.add_argument("--seed", type=int, default=12)

    report_p = sub.add_parser(
        "report",
        help="run a quick reproduction sweep and print paper-vs-measured",
    )
    report_p.add_argument("--seed", type=int, default=1)

    grid_p = sub.add_parser(
        "grid", help="network farmer–worker runtime (TCP transport)"
    )
    grid_sub = grid_p.add_subparsers(dest="grid_command", required=True)

    serve_p = grid_sub.add_parser(
        "serve", help="run the coordinator server for one resolution"
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=4715,
                         help="0 picks a free port (printed at startup)")
    serve_p.add_argument("--jobs", type=int, default=9)
    serve_p.add_argument("--machines", type=int, default=4)
    serve_p.add_argument("--seed", type=int, default=1)
    serve_p.add_argument(
        "--taillard", type=int, default=None, metavar="INDEX",
        help="use Taillard instance INDEX of the jobs x machines class",
    )
    serve_p.add_argument("--bound", choices=["lb1", "lb2", "combined"],
                         default="combined")
    serve_p.add_argument("--no-neh", action="store_true",
                         help="skip the NEH warm start")
    serve_p.add_argument("--interval", type=int, nargs=2, default=None,
                         metavar=("BEGIN", "END"),
                         help="solve only this leaf interval of the tree")
    serve_p.add_argument("--deadline", type=float, default=None,
                         help="abort after this many wall seconds")
    serve_p.add_argument("--lease-seconds", type=float, default=30.0,
                         help="presume a silent worker dead after this long")
    serve_p.add_argument("--checkpoint-dir", default=None)
    serve_p.add_argument("--checkpoint-period", type=float, default=2.0,
                         help="seconds between full INTERVALS+SOLUTION "
                              "snapshots")
    serve_p.add_argument("--resume", action="store_true",
                         help="restore INTERVALS+SOLUTION (and replay the "
                              "journal) from --checkpoint-dir before serving")
    serve_p.add_argument("--no-journal", action="store_true",
                         help="disable the reconciliation journal between "
                              "snapshots (recovery falls back to the last "
                              "full snapshot)")
    serve_p.add_argument("--linger-seconds", type=float, default=10.0,
                         help="grace for worker goodbyes once the search "
                              "space is empty")
    serve_p.add_argument("--result-json", default=None, metavar="PATH",
                         help="write the final ServeResult as JSON to PATH")

    worker_p = grid_sub.add_parser(
        "worker", help="connect to a coordinator server and work"
    )
    worker_p.add_argument("--connect", required=True, metavar="HOST:PORT",
                          help="coordinator server address")
    worker_p.add_argument("--id", default=None,
                          help="worker id (default: host-pid)")
    worker_p.add_argument("--power", type=float, default=1.0)
    worker_p.add_argument("--update-nodes", type=int, default=2000)
    worker_p.add_argument("--update-period", type=float, default=0.25,
                          help="target seconds per interval update "
                               "(0 disables adaptive slicing)")
    worker_p.add_argument("--reply-timeout", type=float, default=10.0)
    worker_p.add_argument("--max-retries", type=int, default=6)
    worker_p.add_argument("--peer-timeout", type=float, default=None,
                          help="drop and redial a connection silent for "
                               "this many seconds (half-open link reaper)")
    worker_p.add_argument("--max-reconnect-attempts", type=int, default=None,
                          help="give up after this many consecutive failed "
                               "reconnects (default: keep trying)")
    worker_p.add_argument("--backoff-cap", type=float, default=2.0,
                          help="cap (seconds) on the decorrelated-jitter "
                               "reconnect backoff")
    _add_kernel_arguments(worker_p)

    service_p = grid_sub.add_parser(
        "service",
        help="run the multi-tenant job-queue service (many concurrent "
             "solves over one shared worker fleet)",
    )
    service_p.add_argument("--host", default="127.0.0.1")
    service_p.add_argument("--port", type=int, default=4716,
                           help="0 picks a free port (printed at startup)")
    service_p.add_argument("--policy", choices=["fifo", "fair"],
                           default="fair",
                           help="grant policy across runnable jobs")
    service_p.add_argument("--max-running", type=_positive_int, default=4,
                           help="jobs allowed in the running set at once")
    service_p.add_argument("--max-queued", type=_positive_int, default=64,
                           help="admission control: refuse submits beyond "
                                "this queue depth")
    service_p.add_argument("--max-per-owner", type=_positive_int, default=2,
                           help="running jobs any single owner may hold")
    service_p.add_argument("--deadline", type=float, default=None,
                           help="abort after this many wall seconds")
    service_p.add_argument("--lease-seconds", type=float, default=30.0,
                           help="presume a silent worker dead after this "
                                "long")
    service_p.add_argument("--checkpoint-dir", default=None,
                           help="durable per-job checkpoints; required for "
                                "--resume")
    service_p.add_argument("--checkpoint-period", type=float, default=2.0)
    service_p.add_argument("--resume", action="store_true",
                           help="recover every persisted job from "
                                "--checkpoint-dir before serving")
    service_p.add_argument("--no-journal", action="store_true",
                           help="disable the per-job reconciliation journal")
    service_p.add_argument("--idle-retry", type=float, default=0.25,
                           help="back-off hint sent to workers when no job "
                                "has work")
    service_p.add_argument("--linger-seconds", type=float, default=10.0)
    service_p.add_argument("--drain-when-idle", action="store_true",
                           help="exit once every submitted job has settled "
                                "(default: serve forever)")
    service_p.add_argument("--report-json", default=None, metavar="PATH",
                           help="write the final ServiceReport as JSON")

    fleet_p = grid_sub.add_parser(
        "fleet",
        help="supervise N worker subprocesses against one server",
    )
    fleet_p.add_argument("--connect", required=True, metavar="HOST:PORT",
                         help="coordinator server address")
    fleet_p.add_argument("--workers", type=int, default=2)
    fleet_p.add_argument("--id-prefix", default="fleet",
                         help="worker ids are PREFIX-SLOT.INCARNATION")
    fleet_p.add_argument("--update-nodes", type=int, default=2000)
    fleet_p.add_argument("--update-period", type=float, default=0.25)
    fleet_p.add_argument("--reply-timeout", type=float, default=10.0)
    fleet_p.add_argument("--max-retries", type=int, default=6)
    fleet_p.add_argument("--peer-timeout", type=float, default=None)
    fleet_p.add_argument("--max-reconnect-attempts", type=int, default=None)
    fleet_p.add_argument("--backoff-cap", type=float, default=2.0)
    fleet_p.add_argument("--respawn-base", type=float, default=0.2,
                         help="base respawn backoff (seconds)")
    fleet_p.add_argument("--respawn-cap", type=float, default=5.0,
                         help="cap on the respawn backoff (seconds)")
    fleet_p.add_argument("--max-respawns", type=int, default=None,
                         help="per-slot respawn budget (default: unlimited)")
    fleet_p.add_argument("--deadline", type=float, default=None,
                         help="stop supervising after this many seconds")
    _add_kernel_arguments(fleet_p)

    job_p = sub.add_parser(
        "job", help="talk to a running `repro grid service`"
    )
    job_p.add_argument("--connect", default="127.0.0.1:4716",
                       metavar="HOST:PORT", help="service address")
    job_p.add_argument("--timeout", type=float, default=30.0,
                       help="per-RPC timeout (seconds)")
    job_sub = job_p.add_subparsers(dest="job_command", required=True)

    submit_p = job_sub.add_parser("submit", help="enqueue one solve")
    submit_p.add_argument("--problem", choices=["flowshop", "tsp"],
                          default="flowshop")
    submit_p.add_argument("--jobs", type=int, default=9,
                          help="flow-shop jobs")
    submit_p.add_argument("--machines", type=int, default=4)
    submit_p.add_argument("--seed", type=int, default=1)
    submit_p.add_argument("--taillard", type=int, default=None,
                          metavar="INDEX")
    submit_p.add_argument("--bound", choices=["lb1", "lb2", "combined"],
                          default="combined")
    submit_p.add_argument("--cities", type=int, default=8,
                          help="TSP cities")
    submit_p.add_argument("--priority", type=_positive_int, default=1,
                          help="fair-share weight (higher = larger share)")
    submit_p.add_argument("--owner", default="anonymous",
                          help="fair-share / per-owner-cap accounting key")
    submit_p.add_argument("--wait", action="store_true",
                          help="block until the job settles and print its "
                               "result")

    status_p = job_sub.add_parser("status", help="one status snapshot")
    status_p.add_argument("job_id")

    result_p = job_sub.add_parser(
        "result", help="poll until the job settles, then print it"
    )
    result_p.add_argument("job_id")
    result_p.add_argument("--poll-interval", type=float, default=0.5)
    result_p.add_argument("--wait-timeout", type=float, default=None,
                          help="give up polling after this many seconds")

    cancel_p = job_sub.add_parser("cancel", help="cancel a queued or "
                                                 "running job")
    cancel_p.add_argument("job_id")

    list_p = job_sub.add_parser("list", help="list jobs the service knows")
    list_p.add_argument("--owner", default="",
                        help="only this owner's jobs")

    sub.add_parser("tables", help="print the static tables (1 and 3)")

    check_p = sub.add_parser(
        "check",
        help="run the project-specific static-analysis pass",
    )
    from repro.tools.check.cli import add_check_arguments

    add_check_arguments(check_p)

    ta_p = sub.add_parser("taillard", help="print a Taillard instance")
    ta_p.add_argument("--jobs", type=int, default=50)
    ta_p.add_argument("--machines", type=int, default=20)
    ta_p.add_argument("--index", type=int, default=6)

    return parser


def _cmd_solve(args) -> int:
    from repro.core import solve
    from repro.problems.flowshop import (
        FlowShopProblem,
        neh,
        random_instance,
        taillard_instance,
    )

    if args.taillard is not None:
        instance = taillard_instance(args.jobs, args.machines, args.taillard)
    else:
        instance = random_instance(args.jobs, args.machines, args.seed)
    print(f"instance: {instance.name} ({instance.jobs}x{instance.machines})")

    ub = math.inf
    warm = None
    if not args.no_neh:
        seq, ub = neh(instance)
        warm = tuple(seq)
        print(f"NEH upper bound: {ub}")
        if args.ig_iterations > 0:
            from repro.problems.flowshop import iterated_greedy

            ig = iterated_greedy(
                instance, iterations=args.ig_iterations, seed=args.seed
            )
            if ig.cost < ub:
                ub = ig.cost
                warm = tuple(ig.sequence)
            print(f"Iterated Greedy upper bound: {ig.cost} "
                  f"({args.ig_iterations} iterations)")

    if args.workers > 0:
        from repro.grid.runtime import RuntimeConfig, flowshop_spec, solve_parallel

        result = solve_parallel(
            flowshop_spec(instance, bound=args.bound),
            RuntimeConfig(
                workers=args.workers,
                initial_upper_bound=ub,
                initial_solution=warm,
                kernel_backend=_kernel_backend_arg(args),
                pool_size=args.pool_size,
                pool_scan_budget=args.pool_scan_budget,
                frontier=args.frontier,
                frontier_width=args.frontier_width,
            ),
        )
        print(f"optimal makespan: {result.cost} (proof: {result.optimal})")
        print(f"schedule: {list(result.solution)}")
        print(
            f"workers={result.workers} allocations={result.work_allocations} "
            f"updates={result.checkpoint_operations} "
            f"nodes={result.nodes_explored} "
            f"redundant={result.redundant_rate:.2%}"
        )
    elif args.checkpoint_dir:
        from repro.core import ResumableSolver

        solver = ResumableSolver(
            FlowShopProblem(instance, bound=args.bound),
            args.checkpoint_dir,
            initial_upper_bound=ub,
            initial_solution=warm,
            kernel_backend=_kernel_backend_arg(args),
            pool_size=args.pool_size,
            pool_scan_budget=args.pool_scan_budget,
            frontier=args.frontier,
            frontier_width=args.frontier_width,
        )
        if solver.progress.resumed_from is not None:
            print(f"resumed from {solver.progress.resumed_from}")
        result = solver.run()
        print(f"optimal makespan: {result.cost} (proof: {result.optimal})")
        print(f"schedule: {list(result.solution)}")
        print(f"checkpoints written: {solver.progress.checkpoints_written}")
    else:
        result = solve(
            FlowShopProblem(instance, bound=args.bound),
            initial_upper_bound=ub,
            initial_solution=warm,
            kernel_backend=_kernel_backend_arg(args),
            pool_size=args.pool_size,
            pool_scan_budget=args.pool_scan_budget,
            frontier=args.frontier,
            frontier_width=args.frontier_width,
        )
        print(f"optimal makespan: {result.cost} (proof: {result.optimal})")
        print(f"schedule: {list(result.solution)}")
        print(f"nodes explored: {result.stats.nodes_explored}")
    return 0


def _cmd_simulate(args) -> int:
    from repro.analysis import render_table2, resample, series_summary, sparkline
    from repro.grid.simulator import (
        FarmerConfig,
        paper_availability_model,
        GridSimulation,
        SimulationConfig,
        SyntheticWorkload,
        WorkerConfig,
        paper_platform,
        small_platform,
    )

    platform = (
        paper_platform() if args.paper_platform else small_platform(args.workers)
    )
    horizon = args.days * 86400.0 * 4
    leaves = math.factorial(50)
    # calibrated churn: roughly 19 % of the pool busy at mean 2.1 GHz
    expected_power = 0.19 * platform.total_processors * 2.1
    workload = SyntheticWorkload(
        leaves,
        seed=args.seed,
        mean_leaf_rate=leaves / (expected_power * args.days * 86400.0),
        irregularity=args.irregularity,
        nodes_per_second=1e4,
    )
    config = SimulationConfig(
        platform=platform,
        workload=workload,
        horizon=horizon,
        seed=args.seed,
        availability=paper_availability_model(),
        farmer=FarmerConfig(duplication_threshold=leaves // 10**8),
        worker=WorkerConfig(update_period=args.update_period),
        always_on=args.always_on,
    )
    report = GridSimulation(config).run()
    print(render_table2(report.table2))
    avg, peak = series_summary(report.series, report.wall_clock)
    print(f"\nFigure 7 (exploited processors over time, avg={avg:.0f}, "
          f"peak={peak}):")
    grid = resample(report.series, max(report.wall_clock, 1.0), samples=300)
    print(sparkline([n for _, n in grid]))
    print(f"\nbest cost: {report.best_cost}  proof: {report.finished}")
    return 0


def _cmd_p2p(args) -> int:
    from repro.core import solve
    from repro.grid.p2p import P2PConfig, P2PSimulation
    from repro.grid.simulator import RealBBWorkload, small_platform
    from repro.problems.flowshop import FlowShopProblem, random_instance

    instance = random_instance(args.jobs, args.machines, args.seed)
    problem = FlowShopProblem(instance)
    expected = solve(problem).cost
    config = P2PConfig(
        platform=small_platform(workers=args.peers, clusters=2),
        workload=RealBBWorkload(problem, nodes_per_second=200),
        horizon=30 * 86400.0,
        seed=args.seed,
        update_period=1.0,
        steal_backoff=0.5,
    )
    report = P2PSimulation(config).run()
    print(f"instance: {instance.name}")
    print(f"P2P optimum: {report.best_cost} (sequential: {expected}, "
          f"Safra termination: {report.finished})")
    print(f"peers={report.peers} steals={report.steals_succeeded}/"
          f"{report.steals_attempted} messages={report.messages} "
          f"hot-spot={report.max_peer_message_share:.0%}")
    return 0 if report.best_cost == expected else 1


def _cmd_report(args) -> int:
    from repro.analysis.report import quick_report

    comparisons = quick_report(seed=args.seed)
    print(comparisons.text())
    print()
    failures = comparisons.failures()
    if failures:
        print(f"{len(failures)} claim(s) FAILED")
        return 1
    print(f"all {len(comparisons.rows)} claims hold")
    return 0


def _cmd_grid(args) -> int:
    if args.grid_command == "serve":
        return _cmd_grid_serve(args)
    if args.grid_command == "service":
        return _cmd_grid_service(args)
    if args.grid_command == "fleet":
        return _cmd_grid_fleet(args)
    return _cmd_grid_worker(args)


def _cmd_grid_serve(args) -> int:
    from pathlib import Path

    from repro.grid.net.serve import GridServer, ServeConfig
    from repro.grid.runtime import flowshop_spec
    from repro.problems.flowshop import neh, random_instance, taillard_instance

    if args.taillard is not None:
        instance = taillard_instance(args.jobs, args.machines, args.taillard)
    else:
        instance = random_instance(args.jobs, args.machines, args.seed)
    print(f"instance: {instance.name} ({instance.jobs}x{instance.machines})")

    ub, warm = math.inf, None
    if not args.no_neh:
        seq, ub = neh(instance)
        warm = tuple(seq)
        print(f"NEH upper bound: {ub}")

    server = GridServer(
        flowshop_spec(instance, bound=args.bound),
        ServeConfig(
            host=args.host,
            port=args.port,
            initial_upper_bound=ub,
            initial_solution=warm,
            deadline=args.deadline,
            lease_seconds=args.lease_seconds,
            checkpoint_dir=(
                Path(args.checkpoint_dir) if args.checkpoint_dir else None
            ),
            checkpoint_period=args.checkpoint_period,
            root_interval=tuple(args.interval) if args.interval else None,
            linger_seconds=args.linger_seconds,
            resume=args.resume,
            journal=not args.no_journal,
        ),
    )
    host, port = server.address
    if args.resume:
        print(
            f"resumed from {args.checkpoint_dir} "
            f"(epoch {server.epoch}, "
            f"journal records replayed: "
            f"{server.coordinator.journal_replayed})"
        )
    print(f"serving on {host}:{port} — connect workers with:")
    print(f"  repro grid worker --connect {host}:{port}")
    result = server.serve_forever()
    print(f"optimal makespan: {result.cost} (proof: {result.optimal})")
    if result.solution is not None:
        print(f"schedule: {list(result.solution)}")
    print(
        f"workers={len(result.worker_stats)} "
        f"allocations={result.work_allocations} "
        f"updates={result.checkpoint_operations} "
        f"nodes={result.nodes_explored} "
        f"redundant={result.redundant_rate:.2%}"
    )
    if args.result_json:
        _write_serve_result(args.result_json, result)
    return 0 if result.optimal else 1


def _write_serve_result(path_text: str, result) -> None:
    import json
    from pathlib import Path

    payload = {
        "cost": result.cost,
        "solution": (
            list(result.solution) if result.solution is not None else None
        ),
        "optimal": result.optimal,
        "aborted": result.aborted,
        "epoch": result.epoch,
        "journal_replayed": result.journal_replayed,
        "nodes_explored": result.nodes_explored,
        "work_allocations": result.work_allocations,
        "checkpoint_operations": result.checkpoint_operations,
        "redundant_rate": result.redundant_rate,
        "wall_seconds": result.wall_seconds,
        "worker_stats": result.worker_stats,
    }
    Path(path_text).write_text(json.dumps(payload, indent=2) + "\n")


def _cmd_grid_service(args) -> int:
    from pathlib import Path

    from repro.grid.service.scheduler import SchedulerConfig
    from repro.grid.service.server import ServiceConfig, SolveService

    service = SolveService(
        ServiceConfig(
            host=args.host,
            port=args.port,
            checkpoint_dir=(
                Path(args.checkpoint_dir) if args.checkpoint_dir else None
            ),
            checkpoint_period=args.checkpoint_period,
            deadline=args.deadline,
            lease_seconds=args.lease_seconds,
            linger_seconds=args.linger_seconds,
            resume=args.resume,
            journal=not args.no_journal,
            scheduler=SchedulerConfig(
                policy=args.policy,
                max_running_jobs=args.max_running,
                max_queued_jobs=args.max_queued,
                max_running_per_owner=args.max_per_owner,
            ),
            idle_retry_after=args.idle_retry,
            drain_when_idle=args.drain_when_idle,
        )
    )
    host, port = service.address
    if args.resume:
        print(f"resumed {len(service.jobs)} job(s) from "
              f"{args.checkpoint_dir} (epoch {service.epoch})")
    print(f"service on {host}:{port} ({args.policy} policy) — "
          f"submit with:")
    print(f"  repro job --connect {host}:{port} submit ...")
    print(f"  repro grid worker --connect {host}:{port}")
    report = service.serve_forever()
    print(f"served {len(report.jobs)} job(s) in {report.wall_seconds:.1f}s: "
          f"{report.jobs_completed} done, {report.jobs_failed} failed, "
          f"{report.jobs_cancelled} cancelled "
          f"(allocations={report.work_allocations} "
          f"idled={report.requests_idled})")
    if args.report_json:
        _write_service_report(args.report_json, report)
    return 0 if not report.aborted and report.jobs_failed == 0 else 1


def _write_service_report(path_text: str, report) -> None:
    import json
    from dataclasses import asdict
    from pathlib import Path

    payload = asdict(report)
    for summary in payload["jobs"].values():
        if summary.get("cost") == math.inf:
            summary["cost"] = None
    Path(path_text).write_text(json.dumps(payload, indent=2) + "\n")


def _job_spec_from_args(args):
    if args.problem == "tsp":
        from repro.grid.runtime import tsp_spec
        from repro.problems.tsp import random_tsp

        return tsp_spec(random_tsp(args.cities, seed=args.seed))
    from repro.grid.runtime import flowshop_spec
    from repro.problems.flowshop import random_instance, taillard_instance

    if args.taillard is not None:
        instance = taillard_instance(args.jobs, args.machines, args.taillard)
    else:
        instance = random_instance(args.jobs, args.machines, args.seed)
    return flowshop_spec(instance, bound=args.bound)


def _print_job_status(status) -> None:
    line = f"job {status.job}: {status.status}"
    if status.status in ("running", "done"):
        cost = "inf" if math.isinf(status.best_cost) else status.best_cost
        line += f" cost={cost} nodes={status.nodes}"
    if status.status == "done" and status.solution is not None:
        line += f" solution={list(status.solution)}"
    if status.error:
        line += f" error={status.error!r}"
    print(line)


def _cmd_job(args) -> int:
    from repro.grid.service.client import JobRefusedError, SyncServiceClient

    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        print(f"--connect must be HOST:PORT, got {args.connect!r}",
              file=sys.stderr)
        return 2
    client = SyncServiceClient(host, int(port_text), timeout=args.timeout)

    if args.job_command == "submit":
        spec = _job_spec_from_args(args)
        try:
            job_id = client.submit(
                spec, priority=args.priority, owner=args.owner
            )
        except JobRefusedError as refusal:
            print(f"refused: {refusal}", file=sys.stderr)
            return 1
        print(job_id)
        if args.wait:
            status = client.result(job_id)
            _print_job_status(status)
            return 0 if status.status == "done" else 1
        return 0
    if args.job_command == "status":
        _print_job_status(client.status(args.job_id))
        return 0
    if args.job_command == "result":
        status = client.result(
            args.job_id,
            poll_interval=args.poll_interval,
            timeout=args.wait_timeout,
        )
        _print_job_status(status)
        return 0 if status.status == "done" else 1
    if args.job_command == "cancel":
        _print_job_status(client.cancel(args.job_id))
        return 0
    summaries = client.list_jobs(owner=args.owner)
    for summary in summaries:
        cost = summary.get("cost")
        cost_text = "-" if cost is None or cost == math.inf else cost
        print(f"{summary['job']}  {summary['status']:<9} "
              f"owner={summary['owner']} priority={summary['priority']} "
              f"cost={cost_text}")
    if not summaries:
        print("(no jobs)")
    return 0


def _cmd_grid_worker(args) -> int:
    import os
    import socket as socket_mod

    from repro.grid.net.serve import run_worker

    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        print(f"--connect must be HOST:PORT, got {args.connect!r}",
              file=sys.stderr)
        return 2
    worker_id = args.id or f"{socket_mod.gethostname()}-{os.getpid()}"
    print(f"worker {worker_id} connecting to {host}:{port_text}")
    outcome = run_worker(
        host,
        int(port_text),
        worker_id,
        power=args.power,
        update_nodes=args.update_nodes,
        update_period=args.update_period or None,
        reply_timeout=args.reply_timeout,
        max_retries=args.max_retries,
        peer_timeout=args.peer_timeout,
        max_reconnect_attempts=args.max_reconnect_attempts,
        backoff_cap=args.backoff_cap,
        kernel_backend=_kernel_backend_arg(args),
        pool_size=args.pool_size,
        pool_scan_budget=args.pool_scan_budget,
        frontier=args.frontier,
        frontier_width=args.frontier_width,
    )
    print(f"worker {worker_id} done: {outcome}")
    # The exit code is the supervision contract (see grid/runtime/
    # supervisor.py): 0 only when the coordinator said Terminate.
    return 0 if outcome == "terminate" else 3


def _cmd_grid_fleet(args) -> int:
    from repro.grid.runtime.supervisor import RespawnPolicy, WorkerSupervisor

    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        print(f"--connect must be HOST:PORT, got {args.connect!r}",
              file=sys.stderr)
        return 2

    def command_for(slot: int, incarnation: int) -> List[str]:
        argv = [
            sys.executable, "-m", "repro.cli", "grid", "worker",
            "--connect", args.connect,
            "--id", f"{args.id_prefix}-{slot}.{incarnation}",
            "--update-nodes", str(args.update_nodes),
            "--update-period", str(args.update_period),
            "--reply-timeout", str(args.reply_timeout),
            "--max-retries", str(args.max_retries),
            "--backoff-cap", str(args.backoff_cap),
            "--kernel-backend", args.kernel_backend,
            "--pool-size", str(args.pool_size),
            "--frontier", args.frontier,
            "--frontier-width", str(args.frontier_width),
        ]
        if args.pool_scan_budget is not None:
            argv += ["--pool-scan-budget", str(args.pool_scan_budget)]
        if args.peer_timeout is not None:
            argv += ["--peer-timeout", str(args.peer_timeout)]
        if args.max_reconnect_attempts is not None:
            argv += ["--max-reconnect-attempts",
                     str(args.max_reconnect_attempts)]
        return argv

    supervisor = WorkerSupervisor(
        command_for,
        workers=args.workers,
        policy=RespawnPolicy(
            backoff_base=args.respawn_base,
            backoff_cap=args.respawn_cap,
            max_respawns=args.max_respawns,
        ),
    )
    print(f"fleet of {args.workers} workers -> {args.connect}")
    report = supervisor.run(deadline=args.deadline)
    for status in report.slots:
        print(
            f"slot {status.slot}: {status.outcome} "
            f"after {status.incarnations} incarnation(s) "
            f"(exit codes {status.exit_codes})"
        )
    print(
        f"fleet done in {report.wall_seconds:.1f}s "
        f"respawns={report.respawns} timed_out={report.timed_out}"
    )
    return 0 if report.all_clean else 1


def _cmd_tables(_args) -> int:
    from repro.analysis import render_table1, render_table3

    print(render_table1())
    print()
    print(render_table3())
    return 0


def _cmd_check(args) -> int:
    from repro.tools.check.cli import run_check

    return run_check(args)


def _cmd_taillard(args) -> int:
    from repro.problems.flowshop import taillard_instance

    instance = taillard_instance(args.jobs, args.machines, args.index)
    print(f"{instance.name}: {instance.jobs} jobs x {instance.machines} machines")
    print(f"trivial lower bound: {instance.trivial_lower_bound()}")
    for row in instance.processing_times:
        print(" ".join(f"{v:2d}" for v in row))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "solve": _cmd_solve,
        "simulate": _cmd_simulate,
        "p2p": _cmd_p2p,
        "grid": _cmd_grid,
        "job": _cmd_job,
        "report": _cmd_report,
        "tables": _cmd_tables,
        "taillard": _cmd_taillard,
        "check": _cmd_check,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""repro — Grid-enabled Branch and Bound with interval-coded work units.

A production-quality reproduction of

    M. Mezmaz, N. Melab, E-G. Talbi,
    "A Grid-enabled Branch and Bound Algorithm for Solving Challenging
    Combinatorial Optimization Problems", IPPS 2007
    (INRIA research report RR-5945, HAL inria-00083814).

Layout
------
``repro.core``
    The paper's contribution: node numbering of regular search trees,
    the fold/unfold operators converting DFS frontiers to two-integer
    intervals, the coordinator's interval algebra (intersection,
    partitioning, selection, duplication), checkpointing, and a
    resumable interval-constrained B&B engine.
``repro.problems``
    Problem substrates: the permutation flow-shop (with a faithful
    Taillard-1993 instance generator — Ta056 included), plus TSP and
    QAP for the Table 3 problem classes.
``repro.grid``
    The grid substrate: a discrete-event simulator of a heterogeneous,
    volatile multi-cluster grid running the farmer-worker protocol, and
    a real multiprocessing runtime for true parallel solves.
``repro.analysis``
    Table/figure renderers and paper-vs-measured bookkeeping.

Quickstart
----------
>>> from repro.problems.flowshop import random_instance, FlowShopProblem
>>> from repro.core import solve
>>> inst = random_instance(jobs=7, machines=4, seed=1)
>>> result = solve(FlowShopProblem(inst))
>>> result.optimal
True
"""

from repro._version import __version__

__all__ = ["__version__"]

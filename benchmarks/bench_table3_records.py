"""Table 3 — the most computation-hungry known exact resolutions.

Regenerates the static comparison table, checks Ta056's rank-2 claim,
and exercises the problem classes of the other rows (TSP and QAP) by
exactly solving synthetic instances of each with the same engine.
"""

from benchmarks.conftest import run_once
from repro.analysis import RECORD_RESOLUTIONS, render_table3
from repro.analysis.records import rank_of
from repro.core import solve
from repro.problems.qap import QAPProblem, random_qap
from repro.problems.tsp import TSPProblem, random_tsp


def test_table3_comparison_of_resolutions(benchmark):
    print("\n" + benchmark(render_table3))
    assert rank_of(22.0) == 2  # "the second resolution of Ta056 ranks second"
    assert RECORD_RESOLUTIONS[0].cpu_years == 84.0  # Sw24978 leads


def test_table3_tsp_class(benchmark):
    # The problem class of rows 1, 3 and 5 (Sw24978/D15112/Usa13509),
    # at a size the engine proves optimal in milliseconds.
    instance = random_tsp(9, seed=4)

    def run():
        return solve(TSPProblem(instance))

    result = run_once(benchmark, run)
    assert result.optimal
    assert sorted(result.solution) == list(range(9))
    benchmark.extra_info["tour_length"] = result.cost


def test_table3_qap_class(benchmark):
    # Row 4's class (Nug30), via the Gilmore-Lawler bound.
    instance = random_qap(7, seed=4)

    def run():
        return solve(QAPProblem(instance))

    result = run_once(benchmark, run)
    assert result.optimal
    assert sorted(result.solution) == list(range(7))
    benchmark.extra_info["assignment_cost"] = result.cost

"""Multi-tenant service throughput — jobs/hour under seeded Poisson load.

PR 9's tentpole multiplexes many concurrent solves over one shared
worker fleet.  This benchmark prices the front door: a seeded Poisson
stream of heterogeneous flow-shop jobs (small instances interleaved
with large ones) is submitted to a live :class:`SolveService` over
loopback TCP, and the fleet drains it under both scheduling policies.
Measured per configuration (1/2/4 workers x fifo/fair):

- **jobs/hour** — completed jobs over the wall clock of the drain;
- **queue wait** — submit-to-running, from the service's own ledger;
- **sojourn split** — submit-to-done for small vs large jobs, the
  number the fair-share policy exists to improve: under FIFO a small
  job submitted behind a large one waits for the whole fleet, under
  fair share it gets its slice immediately.

Every job's proved optimum is asserted against a serial solve of the
same instance — scheduling policy must never change a result, only
when it arrives.

Run via ``make bench-service`` or directly::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py
    PYTHONPATH=src python benchmarks/bench_service_throughput.py --quick

The CI ``service`` leg runs ``--quick`` and uploads the JSON artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import solve  # noqa: E402
from repro.grid.net.serve import run_worker  # noqa: E402
from repro.grid.net.transport import TransportError  # noqa: E402
from repro.grid.runtime import flowshop_spec  # noqa: E402
from repro.grid.service import TERMINAL, SchedulerConfig  # noqa: E402
from repro.grid.service.client import SyncServiceClient  # noqa: E402
from repro.grid.service.server import (  # noqa: E402
    ServiceConfig,
    SolveService,
)
from repro.problems.flowshop import (  # noqa: E402
    FlowShopProblem,
    random_instance,
)

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_PR9.json"


def _catalog(quick: bool) -> List[Dict[str, Any]]:
    """The job mix: small jobs interleaved behind large ones.

    Sizes are deliberately bimodal — the sojourn split between the
    policies only shows when a short job can get stuck behind a long
    one.  Instances and serial costs are computed once and shared by
    every configuration, so all runs see the identical workload.
    """
    if quick:
        sizes = [("large", 7, 4), ("small", 5, 3), ("small", 5, 3),
                 ("large", 7, 3)]
    else:
        # A large job leads each burst so the small ones queue behind
        # it — the configuration FIFO handles worst and fair share
        # exists to fix.
        sizes = [
            ("large", 9, 4), ("small", 6, 3), ("small", 6, 3),
            ("small", 6, 3), ("large", 9, 4), ("small", 6, 3),
            ("small", 6, 3), ("small", 6, 3),
        ]
    catalog = []
    for index, (kind, jobs, machines) in enumerate(sizes):
        instance = random_instance(jobs, machines, seed=400 + index)
        serial = solve(FlowShopProblem(instance))
        catalog.append(
            {
                "kind": kind,
                "instance": instance,
                "serial_cost": serial.cost,
                "owner": "alice" if index % 2 == 0 else "bob",
            }
        )
    return catalog


def _arrival_gaps(count: int, mean_gap: float, seed: int) -> List[float]:
    """Seeded Poisson arrivals: exponential inter-submit gaps."""
    rng = random.Random(seed)
    return [rng.expovariate(1.0 / mean_gap) for _ in range(count)]


def _run_config(
    catalog: List[Dict[str, Any]],
    workers: int,
    policy: str,
    mean_gap: float,
    seed: int,
) -> Dict[str, Any]:
    service = SolveService(
        ServiceConfig(
            port=0,
            poll_interval=0.02,
            idle_retry_after=0.05,
            deadline=900.0,
            linger_seconds=2.0,
            scheduler=SchedulerConfig(
                policy=policy,
                max_running_jobs=len(catalog),
                max_queued_jobs=len(catalog) + 4,
                max_running_per_owner=len(catalog),
            ),
        )
    )
    host, port = service.address
    report_box: Dict[str, Any] = {}
    server_thread = threading.Thread(
        target=lambda: report_box.update(report=service.serve_forever()),
        daemon=True,
    )
    server_thread.start()

    def work(wid: str) -> None:
        try:
            run_worker(
                host, port, wid,
                update_nodes=400,
                update_period=0.05,
                reply_timeout=2.0,
                max_retries=3,
                heartbeat_interval=0.5,
                max_reconnect_attempts=2,
                backoff_cap=0.2,
            )
        except TransportError:
            pass  # the service is gone once the drain is over

    worker_threads = [
        threading.Thread(target=work, args=(f"{policy}-w{i}",), daemon=True)
        for i in range(workers)
    ]
    for thread in worker_threads:
        thread.start()

    client = SyncServiceClient(host, port, timeout=30.0)
    gaps = _arrival_gaps(len(catalog), mean_gap, seed)
    submitted: List[Dict[str, Any]] = []
    bench_start = time.monotonic()
    for entry, gap in zip(catalog, gaps):
        time.sleep(gap)
        job_id = client.submit(
            flowshop_spec(entry["instance"]), owner=entry["owner"]
        )
        submitted.append(
            {
                "job": job_id,
                "entry": entry,
                "submitted_at": time.monotonic(),
            }
        )

    # Drain: poll the live service, stamping each job's first terminal
    # sighting as its completion time.
    done_at: Dict[str, float] = {}
    deadline = time.monotonic() + 600.0
    while len(done_at) < len(submitted) and time.monotonic() < deadline:
        for summary in client.list_jobs():
            job_id = summary["job"]
            if summary["status"] in TERMINAL and job_id not in done_at:
                done_at[job_id] = time.monotonic()
        time.sleep(0.1)
    wall_seconds = time.monotonic() - bench_start

    service.shutdown()
    server_thread.join(timeout=60)
    for thread in worker_threads:
        thread.join(timeout=60)
    report = report_box["report"]

    if len(done_at) < len(submitted):
        raise AssertionError(
            f"{policy}/{workers}w: only {len(done_at)}/{len(submitted)} "
            f"jobs finished before the drain deadline"
        )

    job_rows = []
    sojourns: Dict[str, List[float]] = {"small": [], "large": []}
    for item in submitted:
        entry = item["entry"]
        summary = report.jobs[item["job"]]
        if summary["status"] != "done":
            raise AssertionError(
                f"{policy}/{workers}w: job {item['job']} "
                f"ended {summary['status']}"
            )
        if summary["cost"] != entry["serial_cost"]:
            raise AssertionError(
                f"{policy}/{workers}w: job {item['job']} proved "
                f"{summary['cost']}, serial proved {entry['serial_cost']}"
            )
        sojourn = done_at[item["job"]] - item["submitted_at"]
        sojourns[entry["kind"]].append(sojourn)
        job_rows.append(
            {
                "job": item["job"],
                "kind": entry["kind"],
                "owner": entry["owner"],
                "cost": summary["cost"],
                "serial_identical_optimum": True,
                "queue_wait_seconds": round(
                    summary["queue_wait_seconds"], 4
                ),
                "sojourn_seconds": round(sojourn, 4),
            }
        )

    def _mean(values: List[float]) -> Optional[float]:
        return round(sum(values) / len(values), 4) if values else None

    return {
        "policy": policy,
        "workers": workers,
        "jobs": len(submitted),
        "wall_seconds": round(wall_seconds, 4),
        "jobs_per_hour": round(3600.0 * len(submitted) / wall_seconds, 2),
        "mean_queue_wait_seconds": _mean(
            [row["queue_wait_seconds"] for row in job_rows]
        ),
        "mean_sojourn_small": _mean(sojourns["small"]),
        "mean_sojourn_large": _mean(sojourns["large"]),
        "work_allocations": report.work_allocations,
        "requests_idled": report.requests_idled,
        "job_rows": job_rows,
    }


def run_benchmark(quick: bool = False, seed: int = 2027) -> Dict[str, Any]:
    """Poisson job stream over the service; all optima asserted."""
    catalog = _catalog(quick)
    worker_counts = [1, 2] if quick else [1, 2, 4]
    mean_gap = 0.2 if quick else 0.1

    runs = []
    for workers in worker_counts:
        for policy in ("fifo", "fair"):
            runs.append(
                _run_config(catalog, workers, policy, mean_gap, seed)
            )

    # The headline comparison: at the largest fleet, what did fair
    # share buy the small jobs relative to FIFO?
    biggest = worker_counts[-1]
    by_policy = {
        run["policy"]: run
        for run in runs
        if run["workers"] == biggest
    }
    split = {
        "workers": biggest,
        "fifo_mean_sojourn_small": by_policy["fifo"]["mean_sojourn_small"],
        "fair_mean_sojourn_small": by_policy["fair"]["mean_sojourn_small"],
        "fifo_mean_sojourn_large": by_policy["fifo"]["mean_sojourn_large"],
        "fair_mean_sojourn_large": by_policy["fair"]["mean_sojourn_large"],
        "fifo_mean_queue_wait": by_policy["fifo"][
            "mean_queue_wait_seconds"
        ],
        "fair_mean_queue_wait": by_policy["fair"][
            "mean_queue_wait_seconds"
        ],
    }

    return {
        "pr": 9,
        "benchmark": (
            "multi-tenant service throughput: Poisson job stream over "
            "one shared fleet, fifo vs fair share"
        ),
        "command": "make bench-service",
        "quick": quick,
        "host_cpus": os.cpu_count(),
        "seed": seed,
        "workload": {
            "jobs": len(catalog),
            "mean_arrival_gap_seconds": mean_gap,
            "mix": [
                {
                    "kind": entry["kind"],
                    "instance": entry["instance"].name,
                    "serial_cost": entry["serial_cost"],
                    "owner": entry["owner"],
                }
                for entry in catalog
            ],
        },
        "runs": runs,
        "wait_time_split": split,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small mix, 1/2 workers (the CI smoke configuration)",
    )
    parser.add_argument("--seed", type=int, default=2027)
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=f"output JSON path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    payload = run_benchmark(quick=args.quick, seed=args.seed)
    output = args.output or DEFAULT_OUTPUT
    output.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"wrote {output}")
    for run in payload["runs"]:
        print(
            f"  {run['policy']:<4} x{run['workers']} workers: "
            f"{run['jobs_per_hour']:>8.1f} jobs/h  "
            f"wait {run['mean_queue_wait_seconds']}s  "
            f"small-job sojourn {run['mean_sojourn_small']}s"
        )
    split = payload["wait_time_split"]
    print(
        f"  fair vs fifo small-job sojourn at x{split['workers']}: "
        f"{split['fair_mean_sojourn_small']}s vs "
        f"{split['fifo_mean_sojourn_small']}s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

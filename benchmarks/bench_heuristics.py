"""Ablation — the upper-bound pipeline (NEH -> Iterated Greedy).

The paper's runs were seeded with the best-known metaheuristic value
(3681 for run 1, from reference [9]'s Iterated Greedy).  This bench
quantifies that pipeline on the solved 20x5 Taillard class where the
true optima are known: IG must improve on NEH and close most of the
gap, because the tighter the initial UB, the less tree the grid
explores.
"""

from benchmarks.conftest import run_once
from repro.analysis import render_table
from repro.problems.flowshop import (
    known_optimum,
    neh,
    taillard_instance,
)
from repro.problems.flowshop.iterated_greedy import iterated_greedy

INSTANCES = [1, 2, 3]


def test_ub_pipeline_neh_then_ig(benchmark):
    results = {}

    def pipeline():
        for index in INSTANCES:
            instance = taillard_instance(20, 5, index)
            _, neh_cost = neh(instance)
            ig = iterated_greedy(instance, iterations=120, seed=index)
            results[index] = (neh_cost, ig.cost)
        return results

    run_once(benchmark, pipeline)

    rows = []
    for index in INSTANCES:
        neh_cost, ig_cost = results[index]
        optimum = known_optimum(20, 5, index)
        rows.append(
            (
                f"Ta{index:03d}",
                optimum,
                neh_cost,
                f"{(neh_cost - optimum) / optimum:.2%}",
                ig_cost,
                f"{(ig_cost - optimum) / optimum:.2%}",
            )
        )
    print("\n" + render_table(
        ["instance", "optimum", "NEH", "NEH gap", "IG", "IG gap"],
        rows,
        title="Upper-bound pipeline on the solved 20x5 class",
    ))

    for index in INSTANCES:
        neh_cost, ig_cost = results[index]
        optimum = known_optimum(20, 5, index)
        assert optimum <= ig_cost <= neh_cost
        # IG closes the gap substantially (the paper's 3681 was within
        # 0.05 % of Ta056's optimum)
        assert (ig_cost - optimum) / optimum < 0.03

"""Figure 3 — node ranges (eq. 7): [number, number + weight).

Regenerates the figure's ranges on the small tree and times range
computation plus the child-partition property at Ta056 depth.
"""

from repro.core import Interval, TreeShape, node_range


def test_fig3_node_ranges(benchmark):
    small = TreeShape.permutation(3)
    print("\nFigure 3 — ranges, permutation tree over 3 elements:")
    print(f"  root: {node_range(small, ())}")
    for r0 in range(3):
        print(f"  node [{r0}]: {node_range(small, (r0,))}")

    shape = TreeShape.permutation(50)
    path = tuple(i % (50 - i) for i in range(25))  # a depth-25 node

    rng = benchmark(node_range, shape, path)
    # children partition the parent range exactly
    children = [node_range(shape, path + (r,)) for r in range(50 - 25)]
    assert children[0].begin == rng.begin
    assert children[-1].end == rng.end
    covered = sum(c.length for c in children)
    assert covered == rng.length

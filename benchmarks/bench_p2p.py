"""Extension — the peer-to-peer paradigm (paper §6, future work).

"It is also planned to use the approach with a peer to peer paradigm.
This paradigm makes it possible to push far the scalability limits of
the method."  This bench runs the same interval-coded workload through
both paradigms and compares the scalability-relevant quantities: the
farmer concentrates 100 % of the control traffic on one node, the P2P
ring spreads it out (no hot spot), at a modest cost in redundant
messages.
"""

from benchmarks.conftest import run_once
from repro.analysis import render_table
from repro.grid.p2p import P2PConfig, P2PSimulation
from repro.grid.simulator import (
    FarmerConfig,
    GridSimulation,
    SimulationConfig,
    SyntheticWorkload,
    WorkerConfig,
    small_platform,
)

PEERS = 32
LEAVES = 10**9


def make_workload():
    return SyntheticWorkload(
        LEAVES,
        seed=6,
        mean_leaf_rate=LEAVES / (PEERS * 2.0 * 1800.0),
        irregularity=1.1,
        segments=512,
        nodes_per_second=1e4,
        optimum=3679.0,
        initial_gap=2.0,
    )


def run_farmer_worker():
    config = SimulationConfig(
        platform=small_platform(workers=PEERS, clusters=4),
        workload=make_workload(),
        horizon=90 * 86400.0,
        seed=11,
        always_on=True,
        farmer=FarmerConfig(duplication_threshold=LEAVES // 10**5),
        worker=WorkerConfig(update_period=30.0),
    )
    return GridSimulation(config).run()


def run_p2p():
    config = P2PConfig(
        platform=small_platform(workers=PEERS, clusters=4),
        workload=make_workload(),
        horizon=90 * 86400.0,
        seed=11,
        update_period=30.0,
        steal_backoff=5.0,
    )
    return P2PSimulation(config).run()


def test_p2p_vs_farmer_worker(benchmark):
    results = {}

    def both():
        results["fw"] = run_farmer_worker()
        results["p2p"] = run_p2p()
        return results

    run_once(benchmark, both)
    fw, p2p = results["fw"], results["p2p"]

    rows = [
        (
            "farmer-worker",
            f"{fw.wall_clock / 3600:.2f} h",
            f"{fw.messages:,}",
            "100% (the farmer)",
            f"{fw.table2.redundant_node_rate:.2%}",
            fw.best_cost,
        ),
        (
            "peer-to-peer",
            f"{p2p.wall_clock / 3600:.2f} h",
            f"{p2p.messages:,}",
            f"{p2p.max_peer_message_share:.0%} (max peer)",
            f"{p2p.redundant_rate:.2%}",
            p2p.best_cost,
        ),
    ]
    print("\n" + render_table(
        ["paradigm", "wall clock", "messages", "control hot spot",
         "redundant", "optimum"],
        rows,
        title=f"Paradigm comparison, {PEERS} processors, same workload",
    ))

    assert fw.finished and p2p.finished
    assert fw.best_cost == p2p.best_cost == 3679.0
    # decentralisation: no P2P node concentrates the traffic
    assert p2p.max_peer_message_share < 0.5
    # and the paradigm stays in the same wall-clock ballpark (<= 2x)
    assert p2p.wall_clock < 2.0 * fw.wall_clock
    benchmark.extra_info["p2p_hot_spot"] = round(p2p.max_peer_message_share, 3)
    benchmark.extra_info["fw_wall_h"] = round(fw.wall_clock / 3600, 2)
    benchmark.extra_info["p2p_wall_h"] = round(p2p.wall_clock / 3600, 2)

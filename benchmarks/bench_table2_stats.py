"""Table 2 — the execution statistics of the Ta056 resolution.

The flagship experiment: the full Table 1 platform (1889 processors,
cycle-stealing churn) resolves a 50!-leaf synthetic workload through
the real farmer–worker protocol, and the run reduces to the exact
rows of the paper's Table 2.

The virtual duration is calibrated down from 25 days (see DESIGN.md
§2) — wall-clock and CPU-time rows scale with it, while the
comparable rows are ratios: worker/coordinator exploitation, the
checkpoint:allocation ordering, and the redundancy rate.  The bench
asserts the paper's qualitative claims on those.
"""

from benchmarks.conftest import run_once, ta056_scale_simulation
from repro.analysis import ComparisonSet, render_table2
from repro.grid.simulator import GridSimulation


def test_table2_execution_statistics(benchmark, scale):
    config = ta056_scale_simulation(virtual_days=0.15, seed=1)

    report = run_once(benchmark, lambda: GridSimulation(config).run())
    t2 = report.table2

    print("\n" + render_table2(
        t2,
        scale_note=f"virtual duration calibrated to ~{0.15 * scale:.2f} "
        f"days (paper: 25); ratio rows are the comparable ones",
    ))

    comparisons = ComparisonSet()
    comparisons.add(
        "Table 2", "optimum found with proof", "3679, proved",
        f"{t2.best_cost:.0f}, proved={t2.optimum_proved}",
        t2.optimum_proved and t2.best_cost == 3679.0,
    )
    comparisons.add(
        "Table 2", "worker CPU exploitation", "97%",
        f"{t2.worker_exploitation:.0%}",
        t2.worker_exploitation > 0.9,
    )
    comparisons.add(
        "Table 2", "coordinator CPU exploitation", "1.7%",
        f"{t2.coordinator_exploitation:.1%}",
        t2.coordinator_exploitation < 0.1,
    )
    comparisons.add(
        "Table 2", "worker >> coordinator exploitation", ">50x",
        f"{t2.worker_exploitation / max(t2.coordinator_exploitation, 1e-9):.0f}x",
        t2.worker_exploitation > 10 * t2.coordinator_exploitation,
    )
    comparisons.add(
        "Table 2", "checkpoint ops >> work allocations", "31x",
        f"{t2.checkpoint_operations / max(1, t2.work_allocations):.0f}x",
        t2.checkpoint_operations > 5 * t2.work_allocations,
    )
    comparisons.add(
        "Table 2", "redundant nodes", "0.39%",
        f"{t2.redundant_node_rate:.2%}",
        t2.redundant_node_rate < 0.02,
    )
    print("\n" + comparisons.text())
    assert comparisons.all_hold(), comparisons.failures()

    benchmark.extra_info["worker_exploitation"] = round(
        t2.worker_exploitation, 3
    )
    benchmark.extra_info["coordinator_exploitation"] = round(
        t2.coordinator_exploitation, 4
    )
    benchmark.extra_info["redundant_rate"] = round(t2.redundant_node_rate, 5)

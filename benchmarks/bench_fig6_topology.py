"""Figure 6 — the nation-wide experimental grid topology.

Regenerates the figure as a cluster/link listing of the Table 1
platform (9 clusters, campus Gigabit interconnect, RENATER WAN) and
times a full all-pairs latency evaluation of the network model.
"""

from repro.grid.simulator import paper_platform


def test_fig6_grid_topology(benchmark):
    platform = paper_platform()
    names = [c.name for c in platform.clusters]

    print("\nFigure 6 — the experimental nation-wide grid:")
    for cluster in platform.clusters:
        tag = "Grid'5000" if cluster.domain == "Grid5000" else "Lille campus"
        print(f"  {cluster.name:15s} {tag:13s} {cluster.processors:4d} procs")
    print("  links: campus<->campus Gigabit; everything else RENATER 2.5G")

    sample = platform.network.delay("IUT-A", "Sophia", 64)
    campus = platform.network.delay("IUT-A", "IEEA-FIL", 64)
    intra = platform.network.delay("Orsay", "Orsay", 64)
    print(f"  64-byte message: intra {intra * 1e6:.0f}us, "
          f"campus {campus * 1e6:.0f}us, WAN {sample * 1e6:.0f}us")
    assert intra < campus < sample

    def all_pairs():
        return sum(
            platform.network.delay(a, b, 64) for a in names for b in names
        )

    benchmark(all_pairs)

"""Figure 5 — B&B processes and a coordinator over interval work units.

The figure shows three B&B processes exploring three intervals while a
fourth interval waits for a process.  This bench reproduces that state
with the *real* coordinator, prints the INTERVALS snapshot, then times
a full parallel resolution with three worker processes.
"""

from repro.core import Interval, solve
from repro.grid.runtime import (
    Coordinator,
    RuntimeConfig,
    flowshop_spec,
    solve_parallel,
)
from repro.grid.runtime.protocol import Request, Update
from repro.problems.flowshop import FlowShopProblem, random_instance


def test_fig5_intervals_snapshot(benchmark):
    # Build exactly the figure: 3 processes, 4 intervals (one orphan).
    def build():
        return Coordinator(Interval(0, 10**6))

    coord = benchmark(build)
    coord.handle(Request("bb1"))
    coord.handle(Request("bb2"))
    coord.handle(Request("bb3"))
    # bb3's interval is split once more, then bb3 "dies": orphan.
    coord.handle(Update("bb1", (100_000, 500_000), nodes=0, consumed=0))
    coord.handle(Request("bb3"))
    coord.release_worker("bb3")
    coord.handle(Request("bb3"))
    snapshot = coord.intervals.records()
    print("\nFigure 5 — INTERVALS at the coordinator:")
    for rid, rec in sorted(snapshot.items()):
        owner = ", ".join(map(str, rec.owners)) or "waiting for a process"
        print(f"  interval {rec.interval}  <- {owner}")
    assert coord.intervals.cardinality >= 3


def test_fig5_three_process_resolution(benchmark):
    instance = random_instance(9, 4, seed=33)
    expected = solve(FlowShopProblem(instance)).cost

    def run():
        return solve_parallel(
            flowshop_spec(instance),
            RuntimeConfig(workers=3, update_nodes=300, deadline=180),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.optimal and result.cost == expected
    benchmark.extra_info["allocations"] = result.work_allocations
    print(f"\n3-process resolution: optimum {result.cost}, "
          f"{result.work_allocations} allocations, "
          f"{result.checkpoint_operations} checkpoint ops")

"""Ablation — the paper's central communication claim.

"A special coding of the work units ... allows to optimize the
involved communications": a work unit travels as *two integers*
instead of an explicit collection of frontier nodes.  This bench
measures both encodings on real DFS frontiers of the Ta056 tree and
reports the wire-size ratio, plus the serialisation time of each.
"""

import pickle

from repro.core import Interval, TreeShape, fold, unfold
from repro.grid.simulator.messages import (
    active_list_wire_size,
    interval_wire_size,
)


def frontier_at(shape, fraction_num, fraction_den):
    begin = shape.total_leaves * fraction_num // fraction_den
    return unfold(shape, Interval(begin, shape.total_leaves))


def test_encoding_interval_vs_active_list(benchmark):
    shape = TreeShape.permutation(50)  # Ta056's tree
    rows = []
    for num, den in ((1, 7), (13, 29), (997, 2003)):
        active = frontier_at(shape, num, den)
        interval = fold(active)
        iv_bytes = interval_wire_size(interval)
        al_bytes = active_list_wire_size(len(active), shape.leaf_depth)
        pickled_iv = len(pickle.dumps(interval.as_tuple()))
        pickled_al = len(pickle.dumps(active.rank_paths()))
        rows.append((len(active), iv_bytes, al_bytes, pickled_iv, pickled_al))

    print("\nEncoding cost, real Ta056 DFS frontiers "
          "(model bytes / pickled bytes):")
    print(f"{'nodes':>6} {'interval':>12} {'active list':>12} {'ratio':>7}")
    for nodes, iv, al, piv, pal in rows:
        print(f"{nodes:>6} {iv:>5}B/{piv:>4}B {al:>6}B/{pal:>5}B "
              f"{al / iv:>6.1f}x")
        assert iv < al, "interval coding must be smaller"
        assert pal > piv, "and so must the pickled form"

    # Checkpoint-time claim: folding is O(1); serialising the explicit
    # list is O(frontier).  Time the interval round trip.
    big = Interval(shape.total_leaves // 3, shape.total_leaves)

    def interval_checkpoint():
        active = unfold(shape, big)
        return pickle.dumps(fold(active).as_tuple())

    payload = benchmark(interval_checkpoint)
    assert len(payload) < 200
    benchmark.extra_info["interval_bytes"] = len(payload)

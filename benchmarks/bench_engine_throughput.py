"""Engine throughput — frontier strategies and pool-kernel backends.

PR 2's tentpole restructured the exploration hot path around
``Problem.bound_children``: at decomposition time the engine bounds all
siblings in one vectorised kernel call and prunes before pushing.  PR 7
added a pluggable bound-kernel backend (``repro.core.kernels``) that
bounds a whole *pool* of same-depth frontier entries per call.  PR 8
closes the loop: the ``frontier="wave"`` exploration order accumulates
up to ``pool_size`` same-depth nodes per kernel call instead of
scavenging whatever a thin DFS stack happens to hold.

This benchmark solves 20-job flow-shop instances with every available
path — scalar, per-family batched, pooled-DFS numpy, wave-frontier
numpy, and (when installed) the numba / cupy variants of both —
asserts that the DFS paths agree **exactly** (same optimum,
byte-identical ``ExplorationStats``) and that wave mode reaches the
identical optimum with the identical proof (node counts legitimately
differ: waves see incumbents at different moments), and records
nodes/sec per backend plus the pool-occupancy histogram of every wave
run into ``BENCH_PR8.json`` at the repo root.  Backends whose optional
dependency is missing are recorded as unavailable with the reason
instead of being silently skipped.

End-to-end DFS throughput understates what pooling buys: on a strongly
pruned tree the live frontier per depth is only a handful of entries,
so pool calls stay small (median occupancy ~2 at pool_size=64).  The
wave sweep shows what filling the pool is worth end-to-end; the
``kernel_pools`` section additionally measures the kernels in
isolation — families/sec of one pooled evaluation over N parents vs N
per-family calls — which is the regime grid-scale frontiers (and the
numba/cupy backends) actually run in.

Run it via ``make bench-engine`` (``QUICK=1`` for the smoke scale) or
directly::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --quick

The tier-1 smoke test (``tests/test_bench_engine_throughput.py``) runs
the ``--quick`` configuration on every test run so the fast paths
cannot silently rot.

Configuration notes
-------------------
* The full-tree configurations use a Taillard-distribution 20x5
  instance that is exhaustively solvable in under a second (most
  20-job instances are not; NEH warm-starts the incumbent).
* The 20x20 configurations solve a leading *interval* of Ta021
  (``solve(..., interval=...)`` — the paper's work unit) because the
  full tree is out of reach sequentially; the slice is a complete B&B
  proof over its subtrees.
* ``pair_strategy="all"`` evaluates every O(M^2) machine pair in LB2.
  The scalar path pays the full per-node sweep, the batched kernel
  bounds one family per call, the pool kernels bound many — this is
  the configuration where kernel amortisation matters most.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import Interval, solve  # noqa: E402
from repro.core.kernels import get_backend  # noqa: E402
from repro.problems.flowshop import (  # noqa: E402
    FlowShopProblem,
    neh,
    random_instance,
    taillard_instance,
)
from repro.problems.flowshop.bounds import BoundData  # noqa: E402
from repro.problems.flowshop.makespan import (  # noqa: E402
    advance_fronts_batch,
    completion_front,
)

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_PR8.json"
BASELINE = REPO_ROOT / "BENCH_PR2.json"
PR7_BASELINE = REPO_ROOT / "BENCH_PR7.json"

# Optional-dependency backends: timed when importable, recorded as
# unavailable (with the reason) when not — forcing them anyway would
# just measure the numpy fallback under a misleading label.
OPTIONAL_BACKENDS = ("numba", "cupy")


def _configs(quick: bool) -> List[Dict[str, Any]]:
    """Benchmark configurations: each is one ``solve()`` call."""
    if quick:
        small = random_instance(8, 4, seed=8)
        slice_inst = random_instance(10, 5, seed=2)
        return [
            dict(
                name="quick-8x4-full",
                instance=small,
                pair_strategy="adjacent+ends",
                warm_start=True,
                interval_denominator=None,
            ),
            dict(
                name="quick-10x5-slice",
                instance=slice_inst,
                pair_strategy="all",
                warm_start=False,
                interval_denominator=10**2,
            ),
        ]
    full = random_instance(20, 5, seed=1)
    ta021 = taillard_instance(20, 20, 1)
    return [
        dict(
            name="ta-class-20x5-full",
            instance=full,
            pair_strategy="adjacent+ends",
            warm_start=True,
            interval_denominator=None,
        ),
        dict(
            name="ta-class-20x5-full-allpairs",
            instance=full,
            pair_strategy="all",
            warm_start=True,
            interval_denominator=None,
        ),
        dict(
            name="ta021-20x20-slice",
            instance=ta021,
            pair_strategy="adjacent+ends",
            warm_start=False,
            interval_denominator=10**12,
        ),
        dict(
            name="ta021-20x20-slice-allpairs",
            instance=ta021,
            pair_strategy="all",
            warm_start=False,
            interval_denominator=10**12,
        ),
    ]


def _run_one(config: Dict[str, Any], repeats: int, **solve_kwargs):
    """Best-of-``repeats`` timing of one solve; returns (seconds, result)."""
    instance = config["instance"]
    upper = math.inf
    if config["warm_start"]:
        _, upper = neh(instance)
    interval = None
    if config["interval_denominator"] is not None:
        total = math.factorial(instance.jobs)
        interval = Interval(0, total // config["interval_denominator"])
    best = math.inf
    result = None
    for _ in range(repeats):
        problem = FlowShopProblem(
            instance, pair_strategy=config["pair_strategy"]
        )
        start = time.perf_counter()
        result = solve(
            problem,
            interval=interval,
            initial_upper_bound=upper,
            **solve_kwargs,
        )
        best = min(best, time.perf_counter() - start)
    return best, result


def _rates(stats, seconds: float) -> Dict[str, Any]:
    return {
        "seconds": round(seconds, 4),
        "nodes_per_sec": round(stats.nodes_explored / seconds),
        "bound_evals_per_sec": round(stats.bound_evaluations / seconds),
    }


def _assert_identical(name: str, label: str, reference, candidate) -> None:
    """The paths must be *indistinguishable* except for speed."""
    if candidate.cost != reference.cost:
        raise AssertionError(
            f"{name}: {label} optimum differs "
            f"({candidate.cost} vs {reference.cost})"
        )
    if candidate.solution != reference.solution:
        raise AssertionError(f"{name}: {label} solution differs")
    if vars(candidate.stats) != vars(reference.stats):
        raise AssertionError(
            f"{name}: {label} node accounting differs\n"
            f"  {label}: {vars(candidate.stats)}\n"
            f"  scalar: {vars(reference.stats)}"
        )


def _assert_same_optimum(name: str, label: str, reference, candidate) -> None:
    """Wave mode's contract: identical optimum, solution, and proof.

    Node accounting is *expected* to differ — a wave bounds whole
    same-depth batches before any of their children can improve the
    incumbent, so prune tests fire at different moments than in DFS —
    which is why this deliberately does not compare ``stats``.
    """
    if candidate.cost != reference.cost:
        raise AssertionError(
            f"{name}: {label} optimum differs "
            f"({candidate.cost} vs {reference.cost})"
        )
    if candidate.solution != reference.solution:
        raise AssertionError(f"{name}: {label} solution differs")
    if candidate.optimal != reference.optimal:
        raise AssertionError(
            f"{name}: {label} proof status differs "
            f"({candidate.optimal} vs {reference.optimal})"
        )


def _occupancy_summary(occupancy: Dict[int, int]) -> Dict[str, Any]:
    """Histogram of pool-call occupancy -> median/mean/total summary."""
    total_calls = sum(occupancy.values())
    if total_calls == 0:
        return {
            "pool_calls": 0,
            "occupancy_median": 0,
            "occupancy_mean": 0.0,
            "occupancy_max": 0,
            "histogram": {},
        }
    parents = sum(size * count for size, count in occupancy.items())
    median = 0
    seen = 0
    for size in sorted(occupancy):
        seen += occupancy[size]
        if seen * 2 >= total_calls:
            median = size
            break
    return {
        "pool_calls": total_calls,
        "occupancy_median": median,
        "occupancy_mean": round(parents / total_calls, 1),
        "occupancy_max": max(occupancy),
        "histogram": {
            str(size): occupancy[size] for size in sorted(occupancy)
        },
    }


def _pr7_pooled_rates() -> Dict[str, int]:
    """PR 7's recorded pooled-numpy nodes/sec per config name, if present."""
    if not PR7_BASELINE.exists():
        return {}
    try:
        data = json.loads(PR7_BASELINE.read_text())
        return {
            rec["name"]: rec["backends"]["numpy"]["nodes_per_sec"]
            for rec in data.get("configs", [])
        }
    except (ValueError, KeyError):
        return {}


def _baseline_batched_rates() -> Dict[str, int]:
    """PR 2's recorded batched nodes/sec per config name, if present."""
    if not BASELINE.exists():
        return {}
    try:
        data = json.loads(BASELINE.read_text())
        return {
            rec["name"]: rec["batched"]["nodes_per_sec"]
            for rec in data.get("configs", [])
        }
    except (ValueError, KeyError):
        return {}


def _pool_parents(instance, depth: int, count: int, seed: int):
    """``count`` distinct same-depth parents (remaining, child fronts)."""
    rng = np.random.default_rng(seed)
    jobs = instance.jobs
    p = instance.processing_times
    seen = set()
    remaining_rows = []
    fronts_rows = []
    while len(remaining_rows) < count:
        prefix = tuple(int(x) for x in rng.permutation(jobs)[:depth])
        if prefix in seen:
            continue
        seen.add(prefix)
        remaining = np.array(
            sorted(set(range(jobs)) - set(prefix)), dtype=np.intp
        )
        front = completion_front(instance, list(prefix))
        fronts_rows.append(advance_fronts_batch(front, p[remaining]))
        remaining_rows.append(remaining)
    return np.stack(remaining_rows), np.stack(fronts_rows)


def kernel_pool_benchmark(
    quick: bool, repeats: int, pool_sizes=(1, 8, 64, 256)
) -> List[Dict[str, Any]]:
    """Pool-kernel throughput in isolation: one pooled evaluation over N
    same-depth parents vs N per-family ``combined_children`` calls.

    This is the kernel-amortisation curve the engine's end-to-end DFS
    numbers flatten out of view: a thin frontier keeps engine pools
    small, but wide frontiers (grid workers, GPU-scale pools) run the
    kernels exactly like this.  Both pair strategies are swept because
    they sit in different regimes: at P <= 20 pairs the per-call fixed
    overhead dominates and pooling amortises it away; at O(M^2) pairs
    the kernels are memory-bound and pooling is a wash — the regime
    the compiled (numba/cupy) backends exist for.
    """
    if quick:
        instance = random_instance(10, 5, seed=2)
        depth = 3
        strategies = ("all",)
        pool_sizes = tuple(n for n in pool_sizes if n <= 64)
    else:
        instance = taillard_instance(20, 20, 1)
        depth = 5
        strategies = ("adjacent+ends", "all")
    records = []
    for strategy in strategies:
        data = BoundData(instance, strategy)
        for n_pool in pool_sizes:
            remaining, fronts = _pool_parents(
                instance, depth, n_pool, seed=n_pool
            )
            pooled_out = data.combined_children_pool(fronts, remaining)
            per_family = np.stack(
                [
                    data.combined_children(fronts[i], remaining[i])
                    for i in range(n_pool)
                ]
            )
            if not (pooled_out == per_family).all():
                raise AssertionError(
                    f"kernel pool N={n_pool}: pooled != per-family bounds"
                )
            pooled_s = math.inf
            family_s = math.inf
            for _ in range(max(repeats, 3)):
                start = time.perf_counter()
                data.combined_children_pool(fronts, remaining)
                pooled_s = min(pooled_s, time.perf_counter() - start)
                start = time.perf_counter()
                for i in range(n_pool):
                    data.combined_children(fronts[i], remaining[i])
                family_s = min(family_s, time.perf_counter() - start)
            records.append(
                {
                    "pair_strategy": strategy,
                    "pool_size": n_pool,
                    "identical_bounds": True,
                    "pooled_families_per_sec": round(n_pool / pooled_s),
                    "per_family_families_per_sec": round(n_pool / family_s),
                    "pool_speedup": round(family_s / pooled_s, 2),
                }
            )
    return records


def run_benchmark(quick: bool = False, repeats: int = 3) -> Dict[str, Any]:
    """Run every configuration on every path; verify exact agreement."""
    baseline = _baseline_batched_rates()
    pr7_pooled = _pr7_pooled_rates()
    optional_status: Dict[str, Dict[str, Any]] = {}
    for name in OPTIONAL_BACKENDS:
        backend = get_backend(name)
        optional_status[name] = {
            "available": backend.available(),
            "reason": backend.unavailable_reason(),
        }

    records = []
    for config in _configs(quick):
        scalar_s, scalar_r = _run_one(config, repeats, batched_bounds=False)
        batched_s, batched_r = _run_one(config, repeats, kernel_backend="off")
        pooled_s, pooled_r = _run_one(config, repeats, kernel_backend="numpy")
        _assert_identical(config["name"], "batched", scalar_r, batched_r)
        _assert_identical(config["name"], "pooled-numpy", scalar_r, pooled_r)

        backends: Dict[str, Any] = {
            "numpy": dict(_rates(pooled_r.stats, pooled_s), identical_stats=True)
        }
        for name in OPTIONAL_BACKENDS:
            status = optional_status[name]
            if not status["available"]:
                backends[name] = {
                    "available": False,
                    "reason": status["reason"],
                }
                continue
            opt_s, opt_r = _run_one(config, repeats, kernel_backend=name)
            _assert_identical(config["name"], f"pooled-{name}", scalar_r, opt_r)
            backends[name] = dict(
                _rates(opt_r.stats, opt_s), identical_stats=True
            )

        # Wave-frontier sweep: same backends, frontier="wave".  The
        # optimum/proof must match the scalar oracle bit-for-bit; node
        # counts may not, so each wave record carries its own counts
        # and the occupancy histogram that is the point of the mode.
        wave_backends: Dict[str, Any] = {}
        for name in ("numpy",) + OPTIONAL_BACKENDS:
            if name != "numpy" and not optional_status[name]["available"]:
                wave_backends[name] = {
                    "available": False,
                    "reason": optional_status[name]["reason"],
                }
                continue
            wave_s, wave_r = _run_one(
                config, repeats, kernel_backend=name, frontier="wave"
            )
            _assert_same_optimum(
                config["name"], f"wave-{name}", scalar_r, wave_r
            )
            dfs_rate = backends[name]["nodes_per_sec"]
            dfs_seconds = backends[name]["seconds"]
            wave_backends[name] = dict(
                _rates(wave_r.stats, wave_s),
                identical_optimum=True,
                nodes_explored=wave_r.stats.nodes_explored,
                frontier_spills=wave_r.frontier_spills,
                speedup_vs_pooled_dfs=round(
                    (wave_r.stats.nodes_explored / wave_s) / dfs_rate, 2
                ),
                wall_speedup_vs_pooled_dfs=round(dfs_seconds / wave_s, 2),
                **_occupancy_summary(wave_r.pool_occupancy),
            )

        stats = scalar_r.stats
        instance = config["instance"]
        record = {
            "name": config["name"],
            "jobs": instance.jobs,
            "machines": instance.machines,
            "pair_strategy": config["pair_strategy"],
            "warm_start": config["warm_start"],
            "interval_denominator": config["interval_denominator"],
            "cost": int(scalar_r.cost),
            "nodes_explored": stats.nodes_explored,
            "nodes_pruned": stats.nodes_pruned,
            "nodes_decomposed": stats.nodes_decomposed,
            "bound_evaluations": stats.bound_evaluations,
            "identical_stats": True,
            "scalar": _rates(stats, scalar_s),
            "batched": _rates(stats, batched_s),
            "backends": backends,
            "wave": wave_backends,
            "speedup": round(scalar_s / batched_s, 2),
            "pooled_speedup_vs_scalar": round(scalar_s / pooled_s, 2),
            "pooled_speedup_vs_batched": round(batched_s / pooled_s, 2),
        }
        base_rate = baseline.get(config["name"])
        if base_rate:
            record["pr2_batched_nodes_per_sec"] = base_rate
            record["pooled_vs_pr2_batched"] = round(
                backends["numpy"]["nodes_per_sec"] / base_rate, 2
            )
        pr7_rate = pr7_pooled.get(config["name"])
        if pr7_rate:
            record["pr7_pooled_nodes_per_sec"] = pr7_rate
            record["wave_vs_pr7_pooled"] = round(
                wave_backends["numpy"]["nodes_per_sec"] / pr7_rate, 2
            )
        records.append(record)

    headline = max(
        records,
        key=lambda rec: rec["wave"]["numpy"]["speedup_vs_pooled_dfs"],
    )
    wave_head = headline["wave"]["numpy"]
    return {
        "pr": 8,
        "benchmark": (
            "engine throughput: wave vs dfs frontiers over "
            "pool-evaluation kernel backends"
        ),
        "command": "make bench-engine",
        "quick": quick,
        "repeats": repeats,
        "optional_backends": optional_status,
        "headline": {
            "config": headline["name"],
            "wave_speedup_vs_pooled_dfs": wave_head["speedup_vs_pooled_dfs"],
            "wave_wall_speedup_vs_pooled_dfs": (
                wave_head["wall_speedup_vs_pooled_dfs"]
            ),
            "wave_occupancy_median": wave_head["occupancy_median"],
            "wave_nodes_per_sec": wave_head["nodes_per_sec"],
            "pooled_dfs_nodes_per_sec": (
                headline["backends"]["numpy"]["nodes_per_sec"]
            ),
            "pooled_speedup_vs_scalar": headline["pooled_speedup_vs_scalar"],
            "scalar_nodes_per_sec": headline["scalar"]["nodes_per_sec"],
        },
        "configs": records,
        "kernel_pools": kernel_pool_benchmark(quick, repeats),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny instances, one repeat (the tier-1 smoke configuration)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats per path"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=f"result file (default {DEFAULT_OUTPUT}; quick mode: stdout only)",
    )
    args = parser.parse_args(argv)

    repeats = args.repeats or (1 if args.quick else 3)
    report = run_benchmark(quick=args.quick, repeats=repeats)

    for rec in report["configs"]:
        pooled = rec["backends"]["numpy"]["nodes_per_sec"]
        print(
            f"{rec['name']:<30} {rec['nodes_explored']:>7} nodes  "
            f"scalar {rec['scalar']['nodes_per_sec']:>7} n/s  "
            f"batched {rec['batched']['nodes_per_sec']:>7} n/s  "
            f"pooled {pooled:>7} n/s  "
            f"pooled-vs-scalar {rec['pooled_speedup_vs_scalar']:>6.2f}x"
        )
        for name, wave in rec["wave"].items():
            if not wave.get("identical_optimum"):
                continue
            print(
                f"{rec['name']:<30} wave-{name:<6} "
                f"{wave['nodes_explored']:>7} nodes  "
                f"{wave['nodes_per_sec']:>7} n/s  "
                f"occupancy median {wave['occupancy_median']:>3} "
                f"({wave['pool_calls']} pool calls)  "
                f"vs pooled-dfs {wave['speedup_vs_pooled_dfs']:>6.2f}x"
            )
    for rec in report["kernel_pools"]:
        print(
            f"kernel pool [{rec['pair_strategy']}] N={rec['pool_size']:<4} "
            f"per-family {rec['per_family_families_per_sec']:>7} fam/s  "
            f"pooled {rec['pooled_families_per_sec']:>7} fam/s  "
            f"speedup {rec['pool_speedup']:>6.2f}x"
        )
    for name, status in report["optional_backends"].items():
        if not status["available"]:
            print(f"backend {name}: unavailable ({status['reason']})")
    print(
        f"headline: {report['headline']['config']} "
        f"wave {report['headline']['wave_speedup_vs_pooled_dfs']:.2f}x "
        f"vs pooled dfs (occupancy median "
        f"{report['headline']['wave_occupancy_median']}), "
        f"pooled {report['headline']['pooled_speedup_vs_scalar']:.2f}x "
        f"vs scalar"
    )

    output = args.output
    if output is None and not args.quick:
        output = DEFAULT_OUTPUT
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Engine throughput — batched child bounding vs the per-node path.

PR 2's tentpole restructured the exploration hot path around
``Problem.bound_children``: at decomposition time the engine bounds all
siblings in one vectorised kernel call and prunes before pushing,
instead of popping each child and calling ``lower_bound`` on it.  This
benchmark solves 20-job flow-shop instances with *both* paths, asserts
that they agree **exactly** (same optimum, byte-identical
``ExplorationStats``), and records nodes/sec, bound-evaluations/sec
and the speedup into ``BENCH_PR2.json`` at the repo root — the start
of the perf trajectory (``docs/performance.md``).

Run it via ``make bench-engine`` or directly::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --quick

The tier-1 smoke test (``tests/test_bench_engine_throughput.py``) runs
the ``--quick`` configuration on every test run so the fast path
cannot silently rot.

Configuration notes
-------------------
* The full-tree configurations use a Taillard-distribution 20x5
  instance that is exhaustively solvable in under a second (most
  20-job instances are not; NEH warm-starts the incumbent).
* The 20x20 configurations solve a leading *interval* of Ta021
  (``solve(..., interval=...)`` — the paper's work unit) because the
  full tree is out of reach sequentially; the slice is a complete B&B
  proof over its subtrees.
* ``pair_strategy="all"`` evaluates every O(M^2) machine pair in LB2.
  The scalar path pays a Python-level loop per pair per node, the
  batched kernel sweeps all pairs in one NumPy evaluation — this is
  the configuration where batching matters most, and with the batched
  kernels it becomes an affordable default.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import Interval, solve  # noqa: E402
from repro.problems.flowshop import (  # noqa: E402
    FlowShopProblem,
    neh,
    random_instance,
    taillard_instance,
)

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_PR2.json"


def _configs(quick: bool) -> List[Dict[str, Any]]:
    """Benchmark configurations: each is one ``solve()`` call."""
    if quick:
        small = random_instance(8, 4, seed=8)
        slice_inst = random_instance(10, 5, seed=2)
        return [
            dict(
                name="quick-8x4-full",
                instance=small,
                pair_strategy="adjacent+ends",
                warm_start=True,
                interval_denominator=None,
            ),
            dict(
                name="quick-10x5-slice",
                instance=slice_inst,
                pair_strategy="all",
                warm_start=False,
                interval_denominator=10**2,
            ),
        ]
    full = random_instance(20, 5, seed=1)
    ta021 = taillard_instance(20, 20, 1)
    return [
        dict(
            name="ta-class-20x5-full",
            instance=full,
            pair_strategy="adjacent+ends",
            warm_start=True,
            interval_denominator=None,
        ),
        dict(
            name="ta-class-20x5-full-allpairs",
            instance=full,
            pair_strategy="all",
            warm_start=True,
            interval_denominator=None,
        ),
        dict(
            name="ta021-20x20-slice",
            instance=ta021,
            pair_strategy="adjacent+ends",
            warm_start=False,
            interval_denominator=10**12,
        ),
        dict(
            name="ta021-20x20-slice-allpairs",
            instance=ta021,
            pair_strategy="all",
            warm_start=False,
            interval_denominator=10**12,
        ),
    ]


def _run_one(config: Dict[str, Any], batched: bool, repeats: int):
    """Best-of-``repeats`` timing of one solve; returns (seconds, result)."""
    instance = config["instance"]
    upper = math.inf
    if config["warm_start"]:
        _, upper = neh(instance)
    interval = None
    if config["interval_denominator"] is not None:
        total = math.factorial(instance.jobs)
        interval = Interval(0, total // config["interval_denominator"])
    best = math.inf
    result = None
    for _ in range(repeats):
        problem = FlowShopProblem(
            instance, pair_strategy=config["pair_strategy"]
        )
        start = time.perf_counter()
        result = solve(
            problem,
            interval=interval,
            initial_upper_bound=upper,
            batched_bounds=batched,
        )
        best = min(best, time.perf_counter() - start)
    return best, result


def run_benchmark(quick: bool = False, repeats: int = 3) -> Dict[str, Any]:
    """Run every configuration on both paths; verify exact agreement."""
    records = []
    for config in _configs(quick):
        batched_s, batched_r = _run_one(config, batched=True, repeats=repeats)
        scalar_s, scalar_r = _run_one(config, batched=False, repeats=repeats)

        # The two paths must be *indistinguishable* except for speed.
        if batched_r.cost != scalar_r.cost:
            raise AssertionError(
                f"{config['name']}: optima differ "
                f"(batched {batched_r.cost}, scalar {scalar_r.cost})"
            )
        if batched_r.solution != scalar_r.solution:
            raise AssertionError(f"{config['name']}: solutions differ")
        batched_stats = vars(batched_r.stats)
        scalar_stats = vars(scalar_r.stats)
        if batched_stats != scalar_stats:
            raise AssertionError(
                f"{config['name']}: node accounting differs\n"
                f"  batched: {batched_stats}\n  scalar:  {scalar_stats}"
            )

        stats = batched_r.stats
        instance = config["instance"]
        records.append(
            {
                "name": config["name"],
                "jobs": instance.jobs,
                "machines": instance.machines,
                "pair_strategy": config["pair_strategy"],
                "warm_start": config["warm_start"],
                "interval_denominator": config["interval_denominator"],
                "cost": int(batched_r.cost),
                "nodes_explored": stats.nodes_explored,
                "nodes_pruned": stats.nodes_pruned,
                "nodes_decomposed": stats.nodes_decomposed,
                "bound_evaluations": stats.bound_evaluations,
                "identical_stats": True,
                "scalar": {
                    "seconds": round(scalar_s, 4),
                    "nodes_per_sec": round(stats.nodes_explored / scalar_s),
                    "bound_evals_per_sec": round(
                        stats.bound_evaluations / scalar_s
                    ),
                },
                "batched": {
                    "seconds": round(batched_s, 4),
                    "nodes_per_sec": round(stats.nodes_explored / batched_s),
                    "bound_evals_per_sec": round(
                        stats.bound_evaluations / batched_s
                    ),
                },
                "speedup": round(scalar_s / batched_s, 2),
            }
        )

    headline = max(records, key=lambda rec: rec["speedup"])
    return {
        "pr": 2,
        "benchmark": "engine throughput: batched child bounding vs per-node",
        "command": "make bench-engine",
        "quick": quick,
        "repeats": repeats,
        "headline": {
            "config": headline["name"],
            "speedup": headline["speedup"],
            "batched_nodes_per_sec": headline["batched"]["nodes_per_sec"],
            "scalar_nodes_per_sec": headline["scalar"]["nodes_per_sec"],
        },
        "configs": records,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny instances, one repeat (the tier-1 smoke configuration)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats per path"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=f"result file (default {DEFAULT_OUTPUT}; quick mode: stdout only)",
    )
    args = parser.parse_args(argv)

    repeats = args.repeats or (1 if args.quick else 3)
    report = run_benchmark(quick=args.quick, repeats=repeats)

    for rec in report["configs"]:
        print(
            f"{rec['name']:<30} {rec['nodes_explored']:>7} nodes  "
            f"scalar {rec['scalar']['nodes_per_sec']:>7} n/s  "
            f"batched {rec['batched']['nodes_per_sec']:>7} n/s  "
            f"speedup {rec['speedup']:>6.2f}x"
        )
    print(
        f"headline: {report['headline']['config']} "
        f"{report['headline']['speedup']:.2f}x"
    )

    output = args.output
    if output is None and not args.quick:
        output = DEFAULT_OUTPUT
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""§5.3 — Ta056 itself: instance identity, bounds and schedule check.

Regenerates the paper's headline numbers that are checkable without 22
CPU-years: the instance from Taillard's seed, the evaluation of the
printed optimal schedule, the root lower bounds bracketing the claimed
optimum 3679 (and previous best 3681), and the NEH upper bound.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import ComparisonSet
from repro.problems.flowshop import (
    BoundData,
    makespan,
    neh,
    taillard_instance,
)

PAPER_SCHEDULE = [
    14, 37, 3, 18, 8, 33, 11, 21, 42, 5, 13, 49, 50, 20, 28, 45, 43,
    41, 46, 15, 24, 44, 40, 36, 39, 4, 16, 47, 17, 27, 1, 26, 10, 19,
    32, 25, 30, 7, 2, 31, 23, 6, 48, 22, 29, 34, 9, 35, 38, 12,
]


def test_ta056_bounds_and_schedule(benchmark):
    ta056 = taillard_instance(50, 20, 6)
    printed = makespan(ta056, [j - 1 for j in PAPER_SCHEDULE])
    _, neh_ub = neh(ta056)

    data = BoundData(ta056, pair_strategy="all")
    front = np.zeros(20, dtype=np.int64)
    remaining = np.arange(50, dtype=np.intp)

    def root_bounds():
        return (
            data.one_machine(front, remaining),
            data.two_machine(front, remaining),
        )

    lb1, lb2 = run_once(benchmark, root_bounds)

    cs = ComparisonSet()
    cs.add("§5.3", "Ta056 printed schedule makespan", "3679",
           str(printed), printed in (3679, 3680),
           "preprint permutation evaluates to 3680; see EXPERIMENTS.md")
    cs.add("§5.3", "improves previous best known (3681)", "< 3681",
           str(printed), printed < 3681)
    cs.add("§5.3", "root LB below the optimum", "<= 3679",
           f"LB1={lb1}, LB2={lb2}", max(lb1, lb2) <= 3679)
    cs.add("§5.3", "NEH UB above the optimum", ">= 3679",
           str(neh_ub), neh_ub >= 3679)
    cs.add("§5.3", "gap explains 22 CPU-years", "LB..UB straddles 3679",
           f"[{max(lb1, lb2)}, {neh_ub}]", max(lb1, lb2) <= 3679 <= neh_ub)
    print("\n" + cs.text())
    assert cs.all_hold(), cs.failures()
    benchmark.extra_info["lb1"] = lb1
    benchmark.extra_info["lb2"] = lb2
    benchmark.extra_info["neh_ub"] = neh_ub

"""Figure 4 — fold/unfold: active list <-> interval round trip.

Regenerates the figure's example (an interval covering part of a
permutation tree) and times the round trip at Ta056 scale — the
operation every checkpoint and work transfer performs.
"""

from repro.core import Interval, TreeShape, fold, unfold


def test_fig4_fold_unfold_roundtrip(benchmark):
    small = TreeShape.permutation(4)
    interval = Interval(5, 17)
    active = unfold(small, interval)
    print(f"\nFigure 4 — unfold({interval}) over permutation(4):")
    for node in active:
        print(f"  node {list(node.ranks)} covers {node.range}")
    print(f"  fold -> {fold(active)}")
    assert fold(active) == interval

    shape = TreeShape.permutation(50)
    big = Interval(shape.total_leaves // 7, shape.total_leaves // 3)

    def roundtrip():
        return fold(unfold(shape, big))

    assert benchmark(roundtrip) == big

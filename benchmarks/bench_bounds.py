"""Ablation — lower-bound strength vs pruning power.

Grounds the paper's cost model: why did a 50x20 instance need 6.5e12
nodes?  Sweeps the bound variants (LB1, LB2, combined) over Taillard-
distribution instances and reports root tightness and explored-node
counts; the stronger bound must never explore more nodes.  Also times
a single bound evaluation at Ta056 size — the hot operation the whole
22 CPU-years consisted of.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import render_table
from repro.core import solve
from repro.problems.flowshop import (
    BoundData,
    FlowShopProblem,
    neh,
    random_instance,
    taillard_instance,
)

BOUNDS = ("lb1", "lb2", "combined")


def test_bound_strength_vs_pruning(benchmark):
    instances = [random_instance(9, 5, seed=s) for s in (3, 5, 8)]
    results = {}

    def sweep():
        for inst in instances:
            _, ub = neh(inst)
            for bound in BOUNDS:
                problem = FlowShopProblem(
                    inst, bound=bound,
                    pair_strategy="all" if bound != "lb1" else "adjacent",
                )
                results[(inst.name, bound)] = solve(
                    problem, initial_upper_bound=ub
                )
        return results

    run_once(benchmark, sweep)

    rows = []
    for inst in instances:
        for bound in BOUNDS:
            r = results[(inst.name, bound)]
            rows.append((inst.name, bound, r.cost, r.stats.nodes_explored))
    print("\n" + render_table(
        ["instance", "bound", "optimum", "nodes explored"],
        rows,
        title="Pruning power per bound variant",
    ))

    for inst in instances:
        costs = {results[(inst.name, b)].cost for b in BOUNDS}
        assert len(costs) == 1, "all bounds must find the same optimum"
        nodes = {b: results[(inst.name, b)].stats.nodes_explored for b in BOUNDS}
        assert nodes["combined"] <= nodes["lb1"]


def test_bound_evaluation_cost_at_ta056_size(benchmark):
    ta056 = taillard_instance(50, 20, 6)
    data = BoundData(ta056, pair_strategy="adjacent+ends")
    front = np.zeros(20, dtype=np.int64)
    remaining = np.arange(50, dtype=np.intp)

    value = benchmark(data.combined, front, remaining)
    assert value <= 3679  # admissible at the root
    benchmark.extra_info["root_bound"] = value

"""Crash-recovery cost — journal replay vs snapshot-only restarts.

PR 6's tentpole put an append-only reconciliation journal between the
§4.1 snapshot pair.  This benchmark prices the claim behind it: after
a crash, a successor that replays the journal should re-explore
*strictly fewer* nodes than one restoring the last full snapshot
alone, because the journal shrinks the recovery window from one
``checkpoint_period`` to the last reconciled update.

The measurement is fully deterministic.  A real single-worker run
(the genuine :class:`~repro.core.engine.IntervalExplorer` driving a
genuine :class:`~repro.grid.runtime.coordinator.Coordinator` with a
real :class:`~repro.core.checkpoint.CheckpointStore`) is crashed after
a fixed number of exploration slices, with full snapshots taken every
``snapshot_every`` slices.  Recovery is then performed twice from the
same directory — journal replay on and off — and each recovered state
is *finished* with the sequential engine, so "nodes re-explored" is
counted by the same node accounting the paper uses, not estimated
from leaf ranges.  Both recoveries must still prove the serial
optimum.

A recovery-latency sweep (``load_state`` wall time against journals of
growing length) prices the replay itself.

Run it via ``make bench-recovery`` or directly::

    PYTHONPATH=src python benchmarks/bench_recovery.py
    PYTHONPATH=src python benchmarks/bench_recovery.py --quick

The tier-1 smoke test (``tests/test_bench_recovery.py``) runs the
``--quick`` configuration on every test run, so the
journal-recovers-more guarantee cannot silently rot.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import Incumbent, Interval, solve  # noqa: E402
from repro.core.checkpoint import (  # noqa: E402
    CheckpointStore,
    JournalRecord,
)
from repro.core.engine import IntervalExplorer  # noqa: E402
from repro.grid.runtime.coordinator import Coordinator  # noqa: E402
from repro.grid.runtime.protocol import (  # noqa: E402
    Push,
    Request,
    Update,
)
from repro.problems.flowshop import (  # noqa: E402
    FlowShopProblem,
    random_instance,
)

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_PR6.json"


def _workload(quick: bool) -> Dict[str, Any]:
    if quick:
        return {
            "name": "quick-8x4",
            "instance": random_instance(8, 4, seed=17),
            "slice_nodes": 40,
            # 10 % 3 != 0: the crash always lands *between* snapshots,
            # so the journal always has a window to win back.
            "crash_after_slices": 10,
            "snapshot_every": (3,),
        }
    return {
        "name": "full-11x5",
        "instance": random_instance(11, 5, seed=3),
        "slice_nodes": 2000,
        "crash_after_slices": 21,
        "snapshot_every": (4, 16),
    }


def _crashed_run(
    instance: Any,
    directory: Path,
    slice_nodes: int,
    crash_after_slices: int,
    snapshot_every: int,
) -> Dict[str, Any]:
    """Run a real worker against a real store, then crash it.

    Returns what the crash froze: the true remaining interval, the true
    incumbent, and the counters a successor cannot see.
    """
    problem = FlowShopProblem(instance)
    root = Interval(0, problem.total_leaves())
    store = CheckpointStore(directory)
    coordinator = Coordinator(
        root,
        duplication_threshold=0,
        store=store,
        checkpoint_period=float("inf"),  # snapshots are slice-counted
        journal=True,
    )
    seq = 1
    grant = coordinator.handle(Request("w0", 1.0, seq=seq))
    explorer = IntervalExplorer(
        problem, Interval.from_tuple(grant.interval), incumbent=Incumbent()
    )
    pushed = float("inf")
    nodes_pre_crash = 0
    for sliced in range(1, crash_after_slices + 1):
        report = explorer.step(slice_nodes)
        nodes_pre_crash += report.nodes_processed
        if explorer.incumbent.cost < pushed:
            pushed = explorer.incumbent.cost
            seq += 1
            coordinator.handle(
                Push(
                    "w0",
                    explorer.incumbent.cost,
                    explorer.incumbent.solution,
                    seq=seq,
                )
            )
        remaining = explorer.remaining_interval()
        seq += 1
        coordinator.handle(
            Update(
                "w0",
                remaining.as_tuple(),
                report.nodes_processed,
                0,
                seq=seq,
            )
        )
        if report.finished:
            raise AssertionError(
                "exploration finished before the scripted crash — "
                "raise crash_after_slices or shrink slice_nodes"
            )
        if sliced % snapshot_every == 0:
            coordinator.maybe_checkpoint(force=True)
    # Crash: the coordinator object is dropped on the floor.  Only the
    # checkpoint directory survives.
    return {
        "true_remaining": explorer.remaining_interval(),
        "true_cost": explorer.incumbent.cost,
        "true_solution": explorer.incumbent.solution,
        "nodes_pre_crash": nodes_pre_crash,
        "slices_past_snapshot": crash_after_slices % snapshot_every,
    }


def _finish_nodes(
    instance: Any, remaining: Interval, cost: float, solution: Any
) -> Dict[str, Any]:
    """Finish a recovered state with the sequential engine."""
    problem = FlowShopProblem(instance)
    result = solve(
        problem,
        interval=remaining,
        initial_upper_bound=cost,
        initial_solution=solution,
    )
    return {
        "nodes": result.stats.nodes_explored,
        "cost": result.cost,
    }


def _recover(
    instance: Any, directory: Path, replay_journal: bool
) -> Dict[str, Any]:
    problem = FlowShopProblem(instance)
    root = Interval(0, problem.total_leaves())
    store = CheckpointStore(directory)
    started = time.perf_counter()
    state = store.load_state(root, 0, replay_journal=replay_journal)
    elapsed = time.perf_counter() - started
    intervals = state.intervals
    assert intervals is not None
    pairs = intervals.to_payload()
    incumbent = state.incumbent or Incumbent()
    return {
        "journal": replay_journal,
        "load_seconds": round(elapsed, 6),
        "replayed_records": state.replayed_records,
        "replayed_leaves": state.replayed_leaves,
        "remaining_pairs": [[str(b), str(e)] for b, e in pairs],
        "remaining_leaves": sum(e - b for b, e in pairs),
        "cost": incumbent.cost,
        "solution": incumbent.solution,
    }


def _recovery_case(
    instance: Any,
    serial_cost: float,
    slice_nodes: int,
    crash_after_slices: int,
    snapshot_every: int,
) -> Dict[str, Any]:
    with tempfile.TemporaryDirectory(prefix="bench-recovery-") as tmp:
        directory = Path(tmp) / "ckpt"
        crash = _crashed_run(
            instance,
            directory,
            slice_nodes,
            crash_after_slices,
            snapshot_every,
        )

        # What finishing would have cost with nothing lost at all.
        baseline = _finish_nodes(
            instance,
            crash["true_remaining"],
            crash["true_cost"],
            crash["true_solution"],
        )

        modes = {}
        for replay in (True, False):
            recovered = _recover(instance, directory, replay)
            pairs = [
                Interval(int(b), int(e))
                for b, e in recovered["remaining_pairs"]
            ]
            finish_nodes = 0
            finish_cost = float("inf")
            for interval in pairs:
                finished = _finish_nodes(
                    instance,
                    interval,
                    recovered["cost"],
                    recovered["solution"],
                )
                finish_nodes += finished["nodes"]
                finish_cost = min(finish_cost, finished["cost"])
            if finish_cost != serial_cost:
                raise AssertionError(
                    f"recovery (journal={replay}) finished at "
                    f"{finish_cost}, serial proved {serial_cost}"
                )
            recovered.pop("solution")
            recovered.update(
                nodes_to_finish=finish_nodes,
                nodes_re_explored=finish_nodes - baseline["nodes"],
                serial_identical_optimum=True,
            )
            modes["journal" if replay else "snapshot_only"] = recovered

    journal = modes["journal"]
    snapshot_only = modes["snapshot_only"]
    if crash["slices_past_snapshot"] > 0:
        # The crash landed between snapshots, so the journal must
        # recover strictly more progress than the snapshot alone.
        if not (
            journal["nodes_re_explored"]
            < snapshot_only["nodes_re_explored"]
        ):
            raise AssertionError(
                "journal recovery did not beat snapshot-only: "
                f"{journal['nodes_re_explored']} vs "
                f"{snapshot_only['nodes_re_explored']} nodes re-explored"
            )
    return {
        "snapshot_every_slices": snapshot_every,
        "crash_after_slices": crash_after_slices,
        "slice_nodes": slice_nodes,
        "nodes_pre_crash": crash["nodes_pre_crash"],
        "baseline_nodes_to_finish": baseline["nodes"],
        "journal": journal,
        "snapshot_only": snapshot_only,
        "journal_saves_nodes": (
            snapshot_only["nodes_re_explored"]
            - journal["nodes_re_explored"]
        ),
    }


def _latency_sweep(record_counts: List[int]) -> List[Dict[str, Any]]:
    """Price ``load_state`` against journals of growing length."""
    rows = []
    for count in record_counts:
        with tempfile.TemporaryDirectory(prefix="bench-journal-") as tmp:
            directory = Path(tmp) / "ckpt"
            store = CheckpointStore(directory)
            span = 1 << 70  # endpoints far beyond double precision
            for i in range(count):
                store.journal.append(
                    JournalRecord(
                        0, "explored", (i * span, i * span + span // 2)
                    )
                )
            store.journal.close()
            root = Interval(0, (count + 1) * span)
            started = time.perf_counter()
            state = store.load_state(root, 0)
            elapsed = time.perf_counter() - started
            assert state.replayed_records == count
            rows.append(
                {
                    "records": count,
                    "load_seconds": round(elapsed, 6),
                    "records_per_sec": (
                        round(count / elapsed) if count and elapsed else None
                    ),
                }
            )
    return rows


def run_benchmark(quick: bool = False) -> Dict[str, Any]:
    workload = _workload(quick)
    instance = workload["instance"]
    serial = solve(FlowShopProblem(instance))

    cases = [
        _recovery_case(
            instance,
            serial.cost,
            workload["slice_nodes"],
            workload["crash_after_slices"],
            snapshot_every,
        )
        for snapshot_every in workload["snapshot_every"]
    ]
    latency = _latency_sweep([0, 64, 1024] if quick else [0, 256, 4096])

    return {
        "pr": 6,
        "benchmark": (
            "crash recovery: journal replay vs snapshot-only restart"
        ),
        "command": "make bench-recovery",
        "quick": quick,
        "workload": {
            "name": workload["name"],
            "jobs": instance.jobs,
            "machines": instance.machines,
            "serial_cost": int(serial.cost),
            "serial_nodes": serial.stats.nodes_explored,
        },
        "recovery_cases": cases,
        "journal_strictly_fewer_nodes": all(
            c["journal"]["nodes_re_explored"]
            < c["snapshot_only"]["nodes_re_explored"]
            for c in cases
        ),
        "replay_latency": latency,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny instance (the tier-1 smoke configuration)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=f"result file (default {DEFAULT_OUTPUT}; quick mode: stdout only)",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(quick=args.quick)

    for case in report["recovery_cases"]:
        j, s = case["journal"], case["snapshot_only"]
        print(
            f"snapshot every {case['snapshot_every_slices']:>2} slices: "
            f"journal re-explores {j['nodes_re_explored']:>7} nodes "
            f"(replayed {j['replayed_records']} records), "
            f"snapshot-only {s['nodes_re_explored']:>7} — "
            f"journal saves {case['journal_saves_nodes']} nodes"
        )
    for row in report["replay_latency"]:
        rate = row["records_per_sec"]
        print(
            f"replay {row['records']:>5} records: "
            f"{row['load_seconds']*1000:8.2f} ms"
            + (f"  ({rate} rec/s)" if rate else "")
        )
    print(
        "journal strictly fewer nodes than snapshot-only: "
        f"{report['journal_strictly_fewer_nodes']}"
    )

    output = args.output
    if output is None and not args.quick:
        output = DEFAULT_OUTPUT
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Table 2 (real-B&B cross-check) — the same statistics, real algorithm.

A scaled-down grid (16 simulated workers with churn) resolves a real
flow-shop instance through the genuine B&B engine, regenerating the
Table 2 rows with the *actual* algorithm in the loop and checking the
result against the sequential optimum — the end-to-end fidelity anchor
behind the synthetic flagship run.
"""

from benchmarks.conftest import run_once
from repro.analysis import render_table2
from repro.core import solve
from repro.grid.simulator import (
    AvailabilityModel,
    FarmerConfig,
    GridSimulation,
    RealBBWorkload,
    SimulationConfig,
    WorkerConfig,
    small_platform,
)
from repro.problems.flowshop import FlowShopProblem, neh, random_instance


def test_table2_real_bb_grid(benchmark):
    instance = random_instance(10, 5, seed=9)
    problem = FlowShopProblem(instance)
    _, upper_bound = neh(instance)
    expected = solve(problem, initial_upper_bound=upper_bound).cost

    from repro.core.stats import Incumbent

    workload = RealBBWorkload(
        problem,
        nodes_per_second=0.5,  # stretch the run across churn cycles
        initial=Incumbent(upper_bound, None),
    )
    config = SimulationConfig(
        platform=small_platform(workers=16, clusters=4, dedicated=False),
        workload=workload,
        horizon=400 * 86400.0,
        seed=23,
        availability=AvailabilityModel(
            mean_up=3600.0, mean_down=1800.0, diurnal_amplitude=0.3
        ),
        farmer=FarmerConfig(duplication_threshold=200, checkpoint_period=600.0),
        worker=WorkerConfig(update_period=30.0),
    )

    report = run_once(benchmark, lambda: GridSimulation(config).run())
    print("\n" + render_table2(
        report.table2,
        scale_note="real B&B engine on a 10x5 instance, 16 volatile workers",
    ))
    assert report.finished, "grid must drain INTERVALS"
    assert report.best_cost == expected, "grid must find the true optimum"
    t2 = report.table2
    assert t2.worker_exploitation > 5 * t2.coordinator_exploitation
    benchmark.extra_info["optimum"] = report.best_cost
    benchmark.extra_info["crashes_survived"] = report.worker_crashes

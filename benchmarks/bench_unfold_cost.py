"""Ablation — §3.5's cost claim: unfold performs < P decompositions
per boundary ("In a tree with a maximum depth P, the B&B performs less
than P decompositions").

Measures decomposition counts across many random intervals of the
Ta056 tree (must stay <= 2P for two boundaries) and times unfold as a
function of tree depth to show the cost is O(P), independent of the
interval length.
"""

import numpy as np

from repro.core import Interval, TreeShape, unfold_with_stats


def test_unfold_decomposition_bound(benchmark):
    shape = TreeShape.permutation(50)
    total = shape.total_leaves
    rng = np.random.default_rng(11)
    worst = 0
    for _ in range(200):
        a = int(rng.random() * total)
        b = int(rng.random() * total)
        a, b = min(a, b), max(a, b) + 1
        _, stats = unfold_with_stats(shape, Interval(a, b))
        worst = max(worst, stats.decompositions)
    print(f"\nunfold over 200 random Ta056 intervals: "
          f"max decompositions {worst} (bound 2P = {2 * shape.leaf_depth})")
    assert worst <= 2 * shape.leaf_depth

    interval = Interval(total // 7, total * 2 // 3)

    def one_unfold():
        return unfold_with_stats(shape, interval)[1].decompositions

    decompositions = benchmark(one_unfold)
    assert decompositions <= 2 * shape.leaf_depth
    benchmark.extra_info["max_decompositions"] = worst


def test_unfold_cost_scales_with_depth_not_length(benchmark):
    print("\nunfold cost vs tree depth (interval spans half the tree):")
    print(f"{'P':>4} {'leaves':>12} {'decompositions':>15}")
    for p in (10, 20, 30, 40, 50):
        shape = TreeShape.permutation(p)
        total = shape.total_leaves
        _, stats = unfold_with_stats(shape, Interval(total // 4, 3 * total // 4))
        print(f"{p:>4} {float(total):>12.2e} {stats.decompositions:>15}")
        assert stats.decompositions <= 2 * p

    shape = TreeShape.permutation(50)
    total = shape.total_leaves

    def unfold_huge():
        return unfold_with_stats(shape, Interval(1, total - 1))[1]

    stats = benchmark(unfold_huge)
    # the interval covers ~100 % of 50! leaves yet the cost is ~2P
    assert stats.decompositions <= 2 * shape.leaf_depth

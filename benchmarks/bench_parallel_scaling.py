"""Parallel runtime scaling — nodes/sec, speedup, and the coordination tax.

PR 3's tentpole restructured the farmer–worker hot path so exploration
never blocks on coordination: pipelined interval updates (the
``Reconciled`` reply is collected a slice later), adaptive slice sizing
toward a wall-clock update period, a batch-draining coordinator pump,
and a shared-memory advisory incumbent polled mid-slice.  This
benchmark solves the same Ta021 20×20 interval slice at 1/2/4/8
workers, asserts that **every** configuration proves the exact optimum
the serial engine proves, and records into ``BENCH_PR3.json``:

* aggregate nodes/sec and the speedup over the 1-worker run;
* the per-worker explore-time vs RPC-wait-time breakdown (measured by
  the workers themselves, not inferred);
* a coordination-tax comparison at the widest worker count: the PR 3
  hot path vs the legacy mode (fixed slices, synchronous updates, no
  shared incumbent) on identical work.

Honest-measurement note: ``host_cpus`` is recorded because aggregate
nodes/sec cannot exceed what the host's cores can execute — on a
single-core container every worker count time-shares one CPU and the
speedup column reads ≈1×; the RPC-wait column and the coordination-tax
comparison are the host-independent signals there.  On an N-core host
the same harness shows the worker scaling directly.

Run it via ``make bench-parallel`` or directly::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py
    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --quick

The tier-1 smoke test (``tests/test_bench_parallel_scaling.py``) runs
the ``--quick`` configuration (2 workers) on every test run, so the
parallel path's serial-identical-optimum guarantee cannot silently rot.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import Interval, solve  # noqa: E402
from repro.grid.runtime import (  # noqa: E402
    RuntimeConfig,
    flowshop_spec,
    solve_parallel,
)
from repro.problems.flowshop import (  # noqa: E402
    FlowShopProblem,
    random_instance,
    taillard_instance,
)

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_PR3.json"
DEFAULT_WORKER_COUNTS = [1, 2, 4, 8]


def _make_workload(quick: bool) -> Dict[str, Any]:
    """The instance + interval every configuration solves."""
    if quick:
        instance = random_instance(8, 4, seed=17)
        interval = None  # full tree: tiny anyway
        name = "quick-8x4-full"
    else:
        instance = taillard_instance(20, 20, 1)
        total = math.factorial(instance.jobs)
        interval = Interval(0, total // 10**11)
        name = "ta021-20x20-slice"
    return {"name": name, "instance": instance, "interval": interval}


def _runtime_config(
    workers: int, quick: bool, legacy: bool, interval
) -> RuntimeConfig:
    config = RuntimeConfig(
        workers=workers,
        update_nodes=500 if quick else 2000,
        deadline=120 if quick else 900,
        root_interval=None if interval is None else interval.as_tuple(),
    )
    if legacy:
        # The pre-PR 3 coordination shape: fixed slices, one blocking
        # Update round-trip per slice, bound sharing only at slice
        # boundaries through the coordinator.
        config.update_period = None
        config.pipeline_updates = False
        config.shared_incumbent = False
    return config


def _worker_breakdown(result) -> List[Dict[str, Any]]:
    rows = []
    for worker_id in sorted(result.worker_stats):
        stats = result.worker_stats[worker_id]
        explore = stats.get("explore_seconds", 0.0)
        wait = stats.get("rpc_wait_seconds", 0.0)
        busy = explore + wait
        rows.append(
            {
                "worker": worker_id,
                "nodes": int(stats.get("nodes", 0)),
                "updates": int(stats.get("updates", 0)),
                "explore_seconds": round(explore, 4),
                "rpc_wait_seconds": round(wait, 4),
                "rpc_wait_share": round(wait / busy, 4) if busy else 0.0,
            }
        )
    return rows


def _run_parallel(
    spec,
    workers: int,
    quick: bool,
    expected_cost: float,
    interval,
    legacy: bool = False,
) -> Dict[str, Any]:
    result = solve_parallel(
        spec, _runtime_config(workers, quick, legacy, interval)
    )
    if not result.optimal:
        raise AssertionError(f"{workers}-worker run did not prove optimality")
    if result.cost != expected_cost:
        raise AssertionError(
            f"{workers}-worker run found {result.cost}, "
            f"serial engine proved {expected_cost}"
        )
    return {
        "workers": workers,
        "mode": "legacy" if legacy else "pipelined",
        "cost": int(result.cost),
        "serial_identical_optimum": True,
        "wall_seconds": round(result.wall_seconds, 4),
        "nodes_explored": result.nodes_explored,
        "nodes_per_sec": round(result.nodes_explored / result.wall_seconds),
        "redundant_rate": round(result.redundant_rate, 4),
        "work_allocations": result.work_allocations,
        "explore_seconds": round(result.explore_seconds, 4),
        "rpc_wait_seconds": round(result.rpc_wait_seconds, 4),
        "worker_breakdown": _worker_breakdown(result),
    }


def run_benchmark(
    quick: bool = False, worker_counts: Optional[List[int]] = None
) -> Dict[str, Any]:
    """Scaling sweep + coordination-tax comparison, all optima asserted."""
    if worker_counts is None:
        worker_counts = [1, 2] if quick else list(DEFAULT_WORKER_COUNTS)
    workload = _make_workload(quick)
    instance = workload["instance"]
    interval = workload["interval"]

    serial = solve(
        FlowShopProblem(instance),
        interval=interval,
    )
    spec = flowshop_spec(instance)

    scaling = [
        _run_parallel(spec, workers, quick, serial.cost, interval)
        for workers in worker_counts
    ]
    base = scaling[0]["nodes_per_sec"]
    for record in scaling:
        record["speedup_vs_1_worker"] = round(
            record["nodes_per_sec"] / base, 2
        )

    # Coordination tax: identical work, widest worker count, PR 3 hot
    # path vs the legacy synchronous mode.
    tax_workers = max(worker_counts)
    legacy = _run_parallel(
        spec, tax_workers, quick, serial.cost, interval, legacy=True
    )
    pipelined = next(r for r in scaling if r["workers"] == tax_workers)
    coordination = {
        "workers": tax_workers,
        "legacy_nodes_per_sec": legacy["nodes_per_sec"],
        "pipelined_nodes_per_sec": pipelined["nodes_per_sec"],
        "throughput_ratio": round(
            pipelined["nodes_per_sec"] / legacy["nodes_per_sec"], 2
        ),
        "legacy_rpc_wait_seconds": legacy["rpc_wait_seconds"],
        "pipelined_rpc_wait_seconds": pipelined["rpc_wait_seconds"],
        "legacy_run": legacy,
    }

    return {
        "pr": 3,
        "benchmark": (
            "parallel runtime scaling: adaptive slicing, pipelined updates, "
            "shared-memory incumbent"
        ),
        "command": "make bench-parallel",
        "quick": quick,
        "host_cpus": os.cpu_count(),
        "workload": {
            "name": workload["name"],
            "jobs": instance.jobs,
            "machines": instance.machines,
            "interval": None
            if interval is None
            else [interval.begin, interval.end],
            "serial_cost": int(serial.cost),
            "serial_nodes": serial.stats.nodes_explored,
        },
        "scaling": scaling,
        "coordination_tax": coordination,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny instance, 2 workers (the tier-1 smoke configuration)",
    )
    parser.add_argument(
        "--workers",
        type=str,
        default=None,
        help="comma-separated worker counts (default 1,2,4,8; quick: 1,2)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=f"result file (default {DEFAULT_OUTPUT}; quick mode: stdout only)",
    )
    args = parser.parse_args(argv)

    worker_counts = None
    if args.workers:
        worker_counts = sorted({int(w) for w in args.workers.split(",")})
    report = run_benchmark(quick=args.quick, worker_counts=worker_counts)

    for rec in report["scaling"]:
        print(
            f"workers={rec['workers']:<2} {rec['nodes_explored']:>8} nodes  "
            f"{rec['nodes_per_sec']:>7} n/s  "
            f"speedup {rec['speedup_vs_1_worker']:>5.2f}x  "
            f"rpc-wait {rec['rpc_wait_seconds']:>7.3f}s  "
            f"redundant {rec['redundant_rate']:.2%}"
        )
    tax = report["coordination_tax"]
    print(
        f"coordination tax @ {tax['workers']} workers: "
        f"legacy {tax['legacy_nodes_per_sec']} n/s "
        f"(rpc-wait {tax['legacy_rpc_wait_seconds']:.3f}s) vs pipelined "
        f"{tax['pipelined_nodes_per_sec']} n/s "
        f"(rpc-wait {tax['pipelined_rpc_wait_seconds']:.3f}s) -> "
        f"{tax['throughput_ratio']:.2f}x"
    )
    if report["host_cpus"] < max(r["workers"] for r in report["scaling"]):
        print(
            f"note: host has {report['host_cpus']} CPU(s); worker counts "
            "beyond that time-share cores and the speedup column is "
            "host-limited, not runtime-limited"
        )

    output = args.output
    if output is None and not args.quick:
        output = DEFAULT_OUTPUT
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Ablation — scalability: farmer load vs worker count.

The paper's argument for the farmer-worker paradigm surviving at grid
scale is that interval coding keeps the coordinator nearly idle (1.7 %
at ~1900 registered processors).  This bench sweeps the worker count
on a fixed-size workload and reports both exploitation rates and the
speedup curve — the farmer must stay far below the workers at every
scale, and wall clock must keep dropping.
"""

import math

from benchmarks.conftest import run_once
from repro.analysis import render_table
from repro.grid.simulator import (
    FarmerConfig,
    GridSimulation,
    SimulationConfig,
    SyntheticWorkload,
    WorkerConfig,
    small_platform,
)

WORKER_COUNTS = (4, 16, 64, 256)


def scalability_run(workers: int):
    leaves = 10**9
    workload = SyntheticWorkload(
        leaves,
        seed=2,
        mean_leaf_rate=leaves / (64 * 2.0 * 1200.0),  # fixed total work
        irregularity=1.0,
        segments=512,
        nodes_per_second=1e4,
        optimum=3679.0,
    )
    config = SimulationConfig(
        platform=small_platform(workers=workers, clusters=4),
        workload=workload,
        horizon=90 * 86400.0,
        seed=workers,
        always_on=True,
        farmer=FarmerConfig(
            service_time=1e-3, duplication_threshold=leaves // 10**5
        ),
        worker=WorkerConfig(update_period=30.0),
    )
    return GridSimulation(config).run()


def test_scalability_farmer_vs_workers(benchmark):
    reports = {}

    def sweep():
        for n in WORKER_COUNTS:
            reports[n] = scalability_run(n)
        return reports

    run_once(benchmark, sweep)

    rows = []
    for n in WORKER_COUNTS:
        t2 = reports[n].table2
        rows.append(
            (
                n,
                f"{reports[n].wall_clock / 3600:.2f} h",
                f"{t2.worker_exploitation:.0%}",
                f"{t2.coordinator_exploitation:.2%}",
                f"{t2.redundant_node_rate:.2%}",
            )
        )
    print("\n" + render_table(
        ["workers", "wall clock", "worker CPU", "farmer CPU", "redundant"],
        rows,
        title="Scalability sweep (fixed workload)",
    ))

    for n in WORKER_COUNTS:
        report = reports[n]
        assert report.finished
        assert report.best_cost == 3679.0
        t2 = report.table2
        assert t2.worker_exploitation > 5 * t2.coordinator_exploitation

    # speedup: wall clock strictly decreases as workers quadruple
    walls = [reports[n].wall_clock for n in WORKER_COUNTS]
    assert walls == sorted(walls, reverse=True)
    # farmer load grows with scale but stays small
    assert reports[256].table2.coordinator_exploitation < 0.25
    benchmark.extra_info["speedup_4_to_256"] = round(walls[0] / walls[-1], 1)

"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see the
experiment index in DESIGN.md) and prints the regenerated rows; run

    pytest benchmarks/ --benchmark-only -s

to see them.  ``REPRO_BENCH_SCALE`` (default 1.0) multiplies the
virtual duration of the big grid simulations: the shipped default
keeps the whole harness under ~10 minutes; raise it for tighter
statistics.
"""

from __future__ import annotations

import math
import os

import pytest

from repro.grid.simulator import (
    FarmerConfig,
    paper_availability_model,
    GridSimulation,
    SimulationConfig,
    SyntheticWorkload,
    WorkerConfig,
    paper_platform,
    small_platform,
)

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def ta056_scale_simulation(
    virtual_days: float = 0.15,
    seed: int = 1,
    update_period: float = 120.0,
    platform=None,
    always_on: bool = False,
    irregularity: float = 1.3,
):
    """A Ta056-sized synthetic run on the Table 1 platform.

    Duration is calibrated, not 25 days: rates and ratios (the
    comparable Table 2 rows) are duration-invariant (DESIGN.md §2).
    """
    virtual_days *= SCALE
    platform = platform or paper_platform()
    leaves = math.factorial(50)
    # the calibrated churn keeps ~350 of the 1889 processors busy
    expected_power = 350 * 2.1
    workload = SyntheticWorkload(
        leaves,
        seed=seed,
        mean_leaf_rate=leaves / (expected_power * virtual_days * 86400.0),
        irregularity=irregularity,
        nodes_per_second=9.4e3,  # 6.5e12 nodes / 22 CPU-years
        optimum=3679.0,
        initial_gap=2.0,
    )
    return SimulationConfig(
        platform=platform,
        workload=workload,
        horizon=virtual_days * 86400.0 * 8,
        seed=seed,
        availability=paper_availability_model(),
        farmer=FarmerConfig(
            service_time=1e-3,
            checkpoint_period=1800.0,
            duplication_threshold=leaves // 10**8,
        ),
        worker=WorkerConfig(update_period=update_period),
        always_on=always_on,
    )


def run_once(benchmark, fn):
    """Run an expensive simulation exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def scale():
    return SCALE

"""Ablation — fault tolerance (§4.1): proof survives every crash mode.

Three scenarios on a real-B&B workload, each required to terminate
with the true optimum: (a) heavy worker churn with no death detection
(recovery purely through duplication), (b) repeated farmer outages
with checkpoint recovery, (c) real OS-process crashes in the
multiprocessing runtime.  Also quantifies what the crashes cost in
re-explored work.
"""

from benchmarks.conftest import run_once
from repro.analysis import render_table
from repro.core import solve
from repro.grid.runtime import RuntimeConfig, flowshop_spec, solve_parallel
from repro.grid.simulator import (
    AvailabilityModel,
    FarmerConfig,
    FarmerFailurePlan,
    GridSimulation,
    RealBBWorkload,
    SimulationConfig,
    WorkerConfig,
    small_platform,
)
from repro.problems.flowshop import FlowShopProblem, random_instance


def test_fault_tolerance_matrix(benchmark):
    instance = random_instance(8, 4, seed=3)
    problem = FlowShopProblem(instance)
    expected = solve(problem).cost
    rows = []

    def scenario_worker_churn():
        config = SimulationConfig(
            platform=small_platform(workers=6, dedicated=False),
            workload=RealBBWorkload(problem, nodes_per_second=0.2),
            horizon=3000 * 86400.0,
            seed=31,
            availability=AvailabilityModel(
                mean_up=1800.0, mean_down=900.0, diurnal_amplitude=0.0
            ),
            farmer=FarmerConfig(duplication_threshold=300),
            worker=WorkerConfig(update_period=10.0),
        )
        return GridSimulation(config).run()

    def scenario_farmer_outages():
        config = SimulationConfig(
            platform=small_platform(workers=4),
            workload=RealBBWorkload(problem, nodes_per_second=2.0),
            horizon=3000 * 86400.0,
            always_on=True,
            seed=32,
            farmer=FarmerConfig(
                checkpoint_period=20.0, duplication_threshold=300
            ),
            worker=WorkerConfig(update_period=5.0),
            farmer_failures=FarmerFailurePlan(
                [(20.0, 15.0), (60.0, 20.0), (110.0, 15.0)]
            ),
        )
        return GridSimulation(config).run()

    def scenario_real_process_crashes():
        return solve_parallel(
            flowshop_spec(instance),
            RuntimeConfig(
                workers=4,
                update_nodes=200,
                deadline=180,
                crash_workers={0: 2, 1: 5},
            ),
        )

    def all_scenarios():
        return (
            scenario_worker_churn(),
            scenario_farmer_outages(),
            scenario_real_process_crashes(),
        )

    churn, outages, real = run_once(benchmark, all_scenarios)

    rows.append((
        "worker churn (sim)", churn.best_cost == expected and churn.finished,
        f"{churn.worker_crashes} crashes",
        f"{churn.table2.redundant_node_rate:.2%} redundant",
    ))
    rows.append((
        "farmer outages (sim)",
        outages.best_cost == expected and outages.finished,
        f"{outages.farmer_recoveries} recoveries",
        f"{outages.table2.redundant_node_rate:.2%} redundant",
    ))
    rows.append((
        "process crashes (real)",
        real.cost == expected and real.optimal,
        f"{len(real.crashed_workers)} killed",
        f"{real.redundant_rate:.2%} redundant",
    ))
    print("\n" + render_table(
        ["scenario", "optimum proved", "failures", "re-exploration"],
        rows,
        title="Fault tolerance: proof survives every crash mode",
    ))
    assert all(ok for _, ok, _, _ in rows)
    assert churn.worker_crashes > 0
    assert outages.farmer_recoveries == 3
    assert real.crashed_workers

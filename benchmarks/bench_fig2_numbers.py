"""Figure 2 — node numbers (eq. 6) across a permutation tree.

Regenerates the figure's leaf numbering on the small example tree and
times number computation along deep Ta056-scale paths.
"""

from repro.core import TreeShape, leaf_ranks_for_number, node_number


def test_fig2_node_numbers(benchmark):
    small = TreeShape.permutation(3)
    print("\nFigure 2 — leaf numbers, permutation tree over 3 elements:")
    for number in range(small.total_leaves):
        ranks = leaf_ranks_for_number(small, number)
        print(f"  leaf {list(ranks)} -> number {node_number(small, ranks)}")
        assert node_number(small, ranks) == number

    shape = TreeShape.permutation(50)
    target = shape.total_leaves * 2 // 3

    def number_roundtrip():
        ranks = leaf_ranks_for_number(shape, target)
        return node_number(shape, ranks)

    assert benchmark(number_roundtrip) == target

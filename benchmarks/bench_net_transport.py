"""Network transport coordination tax — loopback TCP vs in-process queues.

PR 4's tentpole put a real network transport under the farmer–worker
runtime.  This benchmark prices it: the same Taillard 20×5 interval
slice is solved by the same workers over the original multiprocessing
queues and over loopback TCP (length-prefixed frames, heartbeats, an
asyncio server thread), and the per-worker explore vs RPC-wait
breakdown — measured by the workers themselves — quantifies what the
wire costs.  Every configuration must prove the serial engine's exact
optimum, and every run's coordinator-side node count must equal the
sum of the workers' own Bye reports (the two sides of the accounting
ledger are produced independently).

A 1-worker TCP run is included as the accounting probe: with a single
worker there is no work stealing and no bound racing, so its node
count is also compared against the serial engine's.

Run it via ``make bench-net`` or directly::

    PYTHONPATH=src python benchmarks/bench_net_transport.py
    PYTHONPATH=src python benchmarks/bench_net_transport.py --quick

The tier-1 smoke test (``tests/test_bench_net_transport.py``) runs the
``--quick`` configuration on every test run, so the TCP path's
serial-identical-optimum guarantee cannot silently rot.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import Interval, solve  # noqa: E402
from repro.grid.runtime import (  # noqa: E402
    RuntimeConfig,
    flowshop_spec,
    solve_parallel,
)
from repro.problems.flowshop import (  # noqa: E402
    FlowShopProblem,
    random_instance,
    taillard_instance,
)

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_PR4.json"


def _make_workload(quick: bool) -> Dict[str, Any]:
    if quick:
        instance = random_instance(8, 4, seed=17)
        interval = None
        name = "quick-8x4-full"
    else:
        # Ta001 without a warm start: the slice is sized to explore
        # ~1.3M nodes in tens of seconds, long enough that transport
        # overhead is a measurable share, short enough to run often.
        instance = taillard_instance(20, 5, 1)
        total = math.factorial(instance.jobs)
        interval = Interval(0, total // 25_000_000)
        name = "ta001-20x5-slice"
    return {"name": name, "instance": instance, "interval": interval}


def _runtime_config(
    workers: int, transport: str, quick: bool, interval
) -> RuntimeConfig:
    return RuntimeConfig(
        workers=workers,
        update_nodes=500 if quick else 2000,
        deadline=120 if quick else 900,
        transport=transport,
        root_interval=None if interval is None else interval.as_tuple(),
    )


def _worker_breakdown(result) -> List[Dict[str, Any]]:
    rows = []
    for worker_id in sorted(result.worker_stats):
        stats = result.worker_stats[worker_id]
        explore = stats.get("explore_seconds", 0.0)
        wait = stats.get("rpc_wait_seconds", 0.0)
        busy = explore + wait
        rows.append(
            {
                "worker": worker_id,
                "nodes": int(stats.get("nodes", 0)),
                "updates": int(stats.get("updates", 0)),
                "explore_seconds": round(explore, 4),
                "rpc_wait_seconds": round(wait, 4),
                "rpc_wait_share": round(wait / busy, 4) if busy else 0.0,
            }
        )
    return rows


def _run(
    spec, workers: int, transport: str, quick: bool, expected_cost, interval
) -> Dict[str, Any]:
    result = solve_parallel(
        spec, _runtime_config(workers, transport, quick, interval)
    )
    if not result.optimal:
        raise AssertionError(
            f"{transport} run ({workers} workers) did not prove optimality"
        )
    if result.cost != expected_cost:
        raise AssertionError(
            f"{transport} run found {result.cost}, serial proved "
            f"{expected_cost}"
        )
    reported = sum(
        int(s.get("nodes", 0)) for s in result.worker_stats.values()
    )
    if reported != result.nodes_explored:
        raise AssertionError(
            f"{transport} accounting mismatch: coordinator counted "
            f"{result.nodes_explored} nodes, workers reported {reported}"
        )
    return {
        "transport": transport,
        "workers": workers,
        "cost": int(result.cost),
        "serial_identical_optimum": True,
        "accounting_consistent": True,
        "wall_seconds": round(result.wall_seconds, 4),
        "nodes_explored": result.nodes_explored,
        "nodes_per_sec": round(result.nodes_explored / result.wall_seconds),
        "redundant_rate": round(result.redundant_rate, 4),
        "work_allocations": result.work_allocations,
        "explore_seconds": round(result.explore_seconds, 4),
        "rpc_wait_seconds": round(result.rpc_wait_seconds, 4),
        "worker_breakdown": _worker_breakdown(result),
    }


def run_benchmark(quick: bool = False, workers: int = 2) -> Dict[str, Any]:
    """In-process vs loopback-TCP on identical work; all optima asserted."""
    workload = _make_workload(quick)
    instance = workload["instance"]
    interval = workload["interval"]

    serial = solve(FlowShopProblem(instance), interval=interval)
    spec = flowshop_spec(instance)

    inproc = _run(spec, workers, "inprocess", quick, serial.cost, interval)
    over_tcp = _run(spec, workers, "tcp", quick, serial.cost, interval)
    probe = _run(spec, 1, "tcp", quick, serial.cost, interval)

    tax = {
        "workers": workers,
        "inprocess_rpc_wait_seconds": inproc["rpc_wait_seconds"],
        "tcp_rpc_wait_seconds": over_tcp["rpc_wait_seconds"],
        "rpc_wait_ratio": (
            round(
                over_tcp["rpc_wait_seconds"] / inproc["rpc_wait_seconds"], 2
            )
            if inproc["rpc_wait_seconds"] > 0
            else None
        ),
        "inprocess_nodes_per_sec": inproc["nodes_per_sec"],
        "tcp_nodes_per_sec": over_tcp["nodes_per_sec"],
        "throughput_ratio": round(
            over_tcp["nodes_per_sec"] / inproc["nodes_per_sec"], 3
        ),
    }

    return {
        "pr": 4,
        "benchmark": (
            "network transport coordination tax: loopback TCP vs "
            "in-process queues"
        ),
        "command": "make bench-net",
        "quick": quick,
        "host_cpus": os.cpu_count(),
        "workload": {
            "name": workload["name"],
            "jobs": instance.jobs,
            "machines": instance.machines,
            "interval": None
            if interval is None
            else [interval.begin, interval.end],
            "serial_cost": int(serial.cost),
            "serial_nodes": serial.stats.nodes_explored,
        },
        "runs": [inproc, over_tcp, probe],
        "transport_tax": tax,
        "accounting_probe": {
            "transport": "tcp",
            "workers": 1,
            "nodes_explored": probe["nodes_explored"],
            "serial_nodes": serial.stats.nodes_explored,
            "matches_serial": (
                probe["nodes_explored"] == serial.stats.nodes_explored
            ),
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny instance (the tier-1 smoke configuration)",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=f"result file (default {DEFAULT_OUTPUT}; quick mode: stdout only)",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(quick=args.quick, workers=args.workers)

    for rec in report["runs"]:
        print(
            f"{rec['transport']:<10} workers={rec['workers']} "
            f"{rec['nodes_explored']:>8} nodes  "
            f"{rec['nodes_per_sec']:>7} n/s  "
            f"rpc-wait {rec['rpc_wait_seconds']:>7.3f}s  "
            f"redundant {rec['redundant_rate']:.2%}"
        )
    tax = report["transport_tax"]
    print(
        f"transport tax @ {tax['workers']} workers: "
        f"in-process rpc-wait {tax['inprocess_rpc_wait_seconds']:.3f}s vs "
        f"tcp {tax['tcp_rpc_wait_seconds']:.3f}s; throughput ratio "
        f"{tax['throughput_ratio']:.3f}x (tcp/in-process)"
    )
    probe = report["accounting_probe"]
    print(
        f"accounting probe (1 worker over tcp): {probe['nodes_explored']} "
        f"nodes vs serial {probe['serial_nodes']} "
        f"(match: {probe['matches_serial']})"
    )

    output = args.output
    if output is None and not args.quick:
        output = DEFAULT_OUTPUT
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Figure 7 — evolution of the number of exploited processors.

Samples cycle-stealing availability traces for the full Table 1 pool
over a (scaled) multi-day horizon and prints the figure as a terminal
sparkline with the paper's summary quantities (average 328, peak
1195 — out of 1889 registered processors).
"""

from repro.analysis import resample, series_summary, sparkline
from repro.grid.simulator import (
    RngRegistry,
    paper_availability_model,
    paper_platform,
)


def test_fig7_processor_availability(benchmark, scale):
    platform = paper_platform()
    model = paper_availability_model()
    horizon = 25 * 86400.0 * min(1.0, scale)
    rng = RngRegistry(7)

    def build_series():
        events = []
        for host in platform.all_hosts():
            trace = model.trace(
                host, horizon, rng.stream("availability", host.host_id)
            )
            for join, leave in trace.periods:
                events.append((join, +1))
                events.append((leave, -1))
        events.sort()
        series = []
        active = 0
        for t, delta in events:
            active += delta
            series.append((t, active))
        return series

    series = benchmark.pedantic(build_series, rounds=1, iterations=1)
    avg, peak = series_summary(series, horizon)
    grid = resample(series, horizon, samples=500)
    print(f"\nFigure 7 — exploited processors over {horizon / 86400:.0f} "
          f"days (paper: avg 328, peak 1195 of 1889):")
    print(sparkline([n for _, n in grid], width=76))
    print(f"  measured: avg {avg:.0f}, peak {peak} of "
          f"{platform.total_processors}")
    # shape claims: substantial churn, never the whole pool, deep valleys
    assert peak < platform.total_processors
    assert 0.1 * platform.total_processors < avg < 0.8 * platform.total_processors
    benchmark.extra_info["avg_workers"] = round(avg)
    benchmark.extra_info["peak_workers"] = peak

"""Figure 1 — node weights per depth of a permutation tree.

Regenerates the paper's Figure 1 (weights attached to depths, eq. 3)
and times the weight-vector precomputation for Ta056's 50-element
permutation tree — the "calculated at the beginning of the B&B" step.
"""

import math

from repro.core import TreeShape


def test_fig1_weight_vector(benchmark):
    shape = benchmark(TreeShape.permutation, 50)
    # Figure 1's content (on the paper's small example tree):
    small = TreeShape.permutation(4)
    print("\nFigure 1 — weight per depth, permutation tree over 4 elements:")
    for depth in small.iter_depths():
        print(f"  depth {depth}: weight {small.weight(depth)} "
              f"(= ({small.leaf_depth} - {depth})!)")
    # eq. 3 must hold at Ta056 scale with exact integers:
    for depth in (0, 10, 25, 49, 50):
        assert shape.weight(depth) == math.factorial(50 - depth)
    benchmark.extra_info["total_leaves"] = str(shape.total_leaves)

"""Ablation — redundant exploration vs duplication threshold (§4.2).

"To avoid obtaining intervals of small size, the partitioning operator
is parameterized by a threshold. An interval which has a length lower
than this threshold is duplicated instead of being divided."  The
paper measured < 0.4 % redundant nodes at its setting.

This bench sweeps the threshold on a fixed churny workload: higher
thresholds duplicate more (higher redundancy) but keep tail latency
bounded; the rate must stay in the sub-percent regime at sane
settings, and grow monotonically-ish with the threshold.
"""

from benchmarks.conftest import run_once
from repro.analysis import render_table
from repro.grid.simulator import (
    AvailabilityModel,
    FarmerConfig,
    GridSimulation,
    SimulationConfig,
    SyntheticWorkload,
    WorkerConfig,
    small_platform,
)

LEAVES = 10**9
THRESHOLDS = (1, LEAVES // 10**5, LEAVES // 10**3, LEAVES // 10**2)


def redundancy_run(threshold: int):
    workload = SyntheticWorkload(
        LEAVES,
        seed=4,
        mean_leaf_rate=LEAVES / (16 * 2.0 * 3600.0),
        irregularity=1.2,
        segments=512,
        nodes_per_second=1e4,
        optimum=3679.0,
    )
    config = SimulationConfig(
        platform=small_platform(workers=16, clusters=4, dedicated=False),
        workload=workload,
        horizon=400 * 86400.0,
        seed=9,
        availability=AvailabilityModel(
            mean_up=1200.0, mean_down=600.0, diurnal_amplitude=0.0
        ),
        farmer=FarmerConfig(duplication_threshold=threshold),
        worker=WorkerConfig(update_period=20.0),
    )
    return GridSimulation(config).run()


def test_redundancy_vs_duplication_threshold(benchmark):
    reports = {}

    def sweep():
        for threshold in THRESHOLDS:
            reports[threshold] = redundancy_run(threshold)
        return reports

    run_once(benchmark, sweep)

    rows = []
    for threshold in THRESHOLDS:
        report = reports[threshold]
        rows.append(
            (
                f"{threshold:.1e}" if threshold > 1 else "1 (off)",
                f"{threshold / LEAVES:.0e}",
                f"{report.table2.redundant_node_rate:.3%}",
                f"{report.wall_clock / 3600:.1f} h",
                report.finished,
            )
        )
    print("\n" + render_table(
        ["threshold", "fraction of tree", "redundant", "wall clock", "done"],
        rows,
        title="Redundancy vs duplication threshold (paper: 0.39%)",
    ))

    rates = [reports[t].table2.redundant_node_rate for t in THRESHOLDS]
    for threshold in THRESHOLDS:
        assert reports[threshold].finished
        assert reports[threshold].best_cost == 3679.0
    # paper-regime thresholds keep redundancy below a percent
    assert rates[1] < 0.01
    # cranking the threshold two orders higher visibly costs more
    assert rates[-1] >= rates[1]
    benchmark.extra_info["rates"] = [round(r, 5) for r in rates]

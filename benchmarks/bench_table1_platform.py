"""Table 1 — the computational pool.

Regenerates the table row by row (CPU type, GHz, domain, count) with
the 1889-processor bottom line and times platform construction.
"""

from repro.analysis import render_table1
from repro.grid.simulator import paper_platform


def test_table1_computational_pool(benchmark):
    platform = benchmark(paper_platform)
    print("\n" + render_table1())
    print()
    print(render_table1(platform))
    assert platform.total_processors == 1889
    assert len(platform.clusters) == 9
    benchmark.extra_info["total_processors"] = platform.total_processors

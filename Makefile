# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install lint check typecheck test chaos chaos-net chaos-kill bench bench-show bench-engine bench-parallel bench-net bench-recovery bench-service report examples clean

install:
	pip install -e . --no-build-isolation

# Lint with ruff when it is available; offline images without it still
# get a green `make test` (the config lives in pyproject.toml).
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipping lint (pip install -e '.[dev]')"; \
	fi

# Project-specific invariants (RC01..RC15): the repro-check pass ships
# with the package, so this runs everywhere — no extra install needed.
check:
	PYTHONPATH=src $(PYTHON) -m repro.tools.check src tests benchmarks examples --strict

# mypy --strict over the typed perimeter (config in pyproject.toml).
# Gated like lint: offline images without mypy still get a green run.
typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro; \
	else \
		echo "mypy not installed; skipping typecheck (pip install -e '.[dev]')"; \
	fi

test: lint check
	$(PYTHON) -m pytest tests/

# Seeded fault schedules against the real multiprocessing runtime:
# coordinator crash/recover, lossy channels, worker crashes and hangs.
chaos:
	$(PYTHON) -m pytest tests/test_chaos_runtime.py -q -s

# The cross-transport chaos matrix (marked slow, excluded from tier-1):
# the same seeded schedules over in-process queues AND loopback TCP,
# plus the socket-specific faults and the multi-tenant service SIGKILL
# acceptance run (two jobs in flight, resume, serial-identical optima).
chaos-net:
	$(PYTHON) -m pytest tests/test_net_chaos.py tests/test_service_crash_e2e.py -m "slow or not slow" -q -s

# The kill -9 acceptance run (marked slow, excluded from tier-1): a
# real serve process SIGKILLed mid-run, resumed from its checkpoint
# directory while the supervisor respawns SIGKILLed workers.
chaos-kill:
	$(PYTHON) -m pytest tests/test_crash_recovery_e2e.py -m "slow or not slow" -q -s

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-show:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Engine throughput: pool-evaluation kernel backends vs batched vs the
# per-node path.  Regenerates BENCH_PR7.json (see docs/performance.md).
# QUICK=1 runs the tiny smoke configuration (stdout only, no artifact).
bench-engine:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_engine_throughput.py $(if $(QUICK),--quick)

# Parallel runtime scaling: adaptive slicing, pipelined updates and the
# shared-memory incumbent at 1/2/4/8 workers.  Regenerates BENCH_PR3.json.
bench-parallel:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_parallel_scaling.py

# Transport tax: the same Ta001 slice over in-process queues vs
# loopback TCP, per-worker RPC-wait split.  Regenerates BENCH_PR4.json.
bench-net:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_net_transport.py

# Crash recovery: journal replay vs snapshot-only restart, plus the
# replay-latency sweep.  Regenerates BENCH_PR6.json.
bench-recovery:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_recovery.py

# Multi-tenant service throughput: a seeded Poisson job stream over one
# shared fleet, fifo vs fair share.  Regenerates BENCH_PR9.json.
# QUICK=1 runs the CI smoke configuration into BENCH_PR9.ci.json.
bench-service:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_service_throughput.py $(if $(QUICK),--quick --output BENCH_PR9.ci.json)

report:
	$(PYTHON) -m repro.cli report

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

clean:
	rm -rf .pytest_cache .benchmarks build *.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +

# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test chaos bench bench-show bench-engine bench-parallel report examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# Seeded fault schedules against the real multiprocessing runtime:
# coordinator crash/recover, lossy channels, worker crashes and hangs.
chaos:
	$(PYTHON) -m pytest tests/test_chaos_runtime.py -q -s

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-show:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Engine throughput: batched child bounding vs the per-node path.
# Regenerates BENCH_PR2.json (see docs/performance.md).
bench-engine:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_engine_throughput.py

# Parallel runtime scaling: adaptive slicing, pipelined updates and the
# shared-memory incumbent at 1/2/4/8 workers.  Regenerates BENCH_PR3.json.
bench-parallel:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_parallel_scaling.py

report:
	$(PYTHON) -m repro.cli report

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

clean:
	rm -rf .pytest_cache .benchmarks build *.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
